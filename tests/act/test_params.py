"""Unit tests for the ACT parameter tables."""

from __future__ import annotations

import pytest

from repro.act.params import (
    ACT_NODE_PARAMS,
    COAL_HEAVY_GRID,
    RENEWABLE_GRID,
    WORLD_AVERAGE_GRID,
    ActNodeParams,
    CarbonIntensity,
)
from repro.core.errors import ValidationError
from repro.technode.nodes import NODE_ROSTER


class TestNodeTable:
    def test_covers_the_roster(self):
        assert set(ACT_NODE_PARAMS) == {n.label for n in NODE_ROSTER}

    def test_energy_per_area_grows_with_newer_nodes(self):
        ordered = [ACT_NODE_PARAMS[n.label].energy_per_area_kwh for n in NODE_ROSTER]
        assert ordered == sorted(ordered)

    def test_energy_growth_tracks_imec_rate(self):
        """Consecutive nodes grow ~25 % in fab energy per area."""
        ordered = [ACT_NODE_PARAMS[n.label].energy_per_area_kwh for n in NODE_ROSTER]
        for older, newer in zip(ordered, ordered[1:]):
            assert newer / older == pytest.approx(1.252, rel=0.02)

    def test_gas_growth_tracks_imec_rate(self):
        ordered = [ACT_NODE_PARAMS[n.label].gas_per_area_kg for n in NODE_ROSTER]
        for older, newer in zip(ordered, ordered[1:]):
            assert newer / older == pytest.approx(1.195, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ActNodeParams("x", energy_per_area_kwh=0.0, gas_per_area_kg=0.1, material_per_area_kg=0.5)


class TestGrids:
    def test_ordering(self):
        assert (
            RENEWABLE_GRID.kg_per_kwh
            < WORLD_AVERAGE_GRID.kg_per_kwh
            < COAL_HEAVY_GRID.kg_per_kwh
        )

    def test_rejects_negative_intensity(self):
        with pytest.raises(ValidationError):
            CarbonIntensity("bad", -0.1)
