"""Unit tests for the whole-device ACT model."""

from __future__ import annotations

import pytest

from repro.act.model import ActChipSpec, ActModel
from repro.act.system import (
    BOARD_AND_PSU_KG,
    DRAM_KG_PER_GB,
    ENCLOSURE_KG,
    HDD_KG_PER_TB,
    NAND_KG_PER_GB,
    DeviceSpec,
    SystemActModel,
)
from repro.core.errors import ValidationError
from repro.validation.lca import chip_attribution_error


@pytest.fixture
def laptop() -> DeviceSpec:
    return DeviceSpec(
        chip=ActChipSpec("laptop SoC", die_area_mm2=150.0, avg_power_w=8.0, node="5nm"),
        dram_gb=16.0,
        nand_gb=512.0,
        rest_of_system_power_w=6.0,
    )


@pytest.fixture
def model() -> SystemActModel:
    return SystemActModel()


class TestBreakdown:
    def test_components_sum_to_total(self, laptop, model):
        b = model.breakdown(laptop)
        total = (
            b.chip_embodied
            + b.chip_operational
            + b.dram
            + b.storage
            + b.board
            + b.enclosure
            + b.rest_operational
        )
        assert b.device_total == pytest.approx(total)

    def test_chip_footprints_match_chip_model(self, laptop, model):
        b = model.breakdown(laptop)
        chip_model = ActModel()
        assert b.chip_embodied == pytest.approx(chip_model.embodied_kg(laptop.chip))
        assert b.chip_operational == pytest.approx(
            chip_model.operational_kg(laptop.chip)
        )

    def test_commodity_intensities(self, laptop, model):
        b = model.breakdown(laptop)
        assert b.dram == pytest.approx(16.0 * DRAM_KG_PER_GB)
        assert b.storage == pytest.approx(512.0 * NAND_KG_PER_GB)
        assert b.board == BOARD_AND_PSU_KG
        assert b.enclosure == ENCLOSURE_KG

    def test_hdd_adds_storage(self, laptop, model):
        nas = DeviceSpec(chip=laptop.chip, nand_gb=0.0, hdd_tb=4.0)
        b = model.breakdown(nas)
        assert b.storage == pytest.approx(4.0 * HDD_KG_PER_TB)

    def test_chip_share_in_unit_interval(self, laptop, model):
        share = model.breakdown(laptop).chip_share
        assert 0.0 < share < 1.0

    def test_rejects_negative_dram(self, laptop):
        with pytest.raises(ValidationError):
            DeviceSpec(chip=laptop.chip, dram_gb=-1.0)


class TestValidationBridge:
    def test_as_system_lca_totals_agree(self, laptop, model):
        b = model.breakdown(laptop)
        lca = b.as_system_lca()
        assert lca.total == pytest.approx(b.device_total)
        assert lca.chip_share == pytest.approx(b.chip_share)

    def test_section_3_6_with_realistic_devices(self, model):
        """Two phones whose SoCs differ 2x in area: the chip totals
        differ ~1.44x but the device totals differ only ~1.03x — the
        LCA report hides nearly all of the chip difference. (Note the
        chips must be embodied-dominated for the area difference to
        show at all; a power-hungry laptop SoC's identical use phase
        would dilute even the chip-level ratio.)"""

        def phone(name: str, area: float) -> DeviceSpec:
            return DeviceSpec(
                chip=ActChipSpec(name, die_area_mm2=area, avg_power_w=0.3, node="5nm"),
                dram_gb=8.0,
                nand_gb=256.0,
                rest_of_system_power_w=0.3,
            )

        error = chip_attribution_error(
            model.breakdown(phone("big", 200.0)).as_system_lca(),
            model.breakdown(phone("small", 100.0)).as_system_lca(),
        )
        assert error > 1.3

    def test_bigger_memory_dilutes_chip_share(self, laptop, model):
        fat = DeviceSpec(chip=laptop.chip, dram_gb=128.0, nand_gb=4096.0)
        assert model.breakdown(fat).chip_share < model.breakdown(laptop).chip_share
