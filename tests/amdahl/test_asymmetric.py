"""Unit tests for the asymmetric multicore model (paper Eq. 4-6)."""

from __future__ import annotations

import math

import pytest

from repro.amdahl.asymmetric import AsymmetricMulticore
from repro.amdahl.symmetric import SymmetricMulticore
from repro.core.errors import DomainError, ValidationError


def paper_config(n: int, f: float) -> AsymmetricMulticore:
    """The Figure 4 configuration: one 4-BCE big core."""
    return AsymmetricMulticore(total_bces=n, big_core_bces=4, parallel_fraction=f)


class TestConstruction:
    def test_structure(self):
        mc = paper_config(32, 0.8)
        assert mc.small_cores == 28
        assert mc.area == 32.0
        assert mc.big_core_perf == 2.0

    def test_big_core_must_leave_small_cores(self):
        with pytest.raises(DomainError):
            AsymmetricMulticore(total_bces=4, big_core_bces=4, parallel_fraction=0.5)

    def test_big_core_larger_than_chip_rejected(self):
        with pytest.raises(DomainError):
            AsymmetricMulticore(total_bces=4, big_core_bces=8, parallel_fraction=0.5)

    def test_rejects_one_bce_chip(self):
        with pytest.raises(ValidationError):
            AsymmetricMulticore(total_bces=1, big_core_bces=1, parallel_fraction=0.5)


class TestSpeedup:
    def test_paper_eq4(self):
        mc = paper_config(32, 0.8)
        expected = 1.0 / ((1 - 0.8) / math.sqrt(4) + 0.8 / 28)
        assert mc.speedup == pytest.approx(expected)

    def test_finding5_speedup_value(self):
        """asym 16 BCEs f=0.8: S = 6.0 (hand-checked from Eq. 4)."""
        assert paper_config(16, 0.8).speedup == pytest.approx(6.0)

    def test_asym_beats_sym_for_serial_heavy_code(self):
        """The big core accelerates the serial phase: for modest f the
        asymmetric design outperforms the equal-area symmetric one."""
        assert paper_config(16, 0.5).speedup > SymmetricMulticore(16, 0.5).speedup

    def test_sym_beats_asym_for_almost_fully_parallel_code(self):
        """Near f = 1 the big core's area is better spent on small
        cores: the equal-area symmetric design wins."""
        assert paper_config(16, 0.99).speedup < SymmetricMulticore(16, 0.99).speedup


class TestPowerEnergy:
    def test_paper_eq5_eq6(self):
        mc = paper_config(32, 0.8)
        serial_t = 0.2 / 2.0
        parallel_t = 0.8 / 28.0
        serial_p = 4 + 28 * 0.2
        parallel_p = 4 * 0.2 + 28
        energy = serial_t * serial_p + parallel_t * parallel_p
        assert mc.energy == pytest.approx(energy)
        assert mc.power == pytest.approx(energy / (serial_t + parallel_t))

    def test_power_is_energy_times_speedup(self):
        mc = paper_config(16, 0.95)
        assert mc.power == pytest.approx(mc.energy * mc.speedup)

    def test_phase_powers(self):
        mc = paper_config(8, 0.5)
        assert mc.serial_power == pytest.approx(4 + 4 * 0.2)
        assert mc.parallel_power == pytest.approx(4 * 0.2 + 4)

    def test_zero_leakage_reduces_energy(self):
        leaky = paper_config(32, 0.8)
        tight = AsymmetricMulticore(
            total_bces=32, big_core_bces=4, parallel_fraction=0.8, leakage=0.0
        )
        assert tight.energy < leaky.energy


class TestDesignPoint:
    def test_fields(self):
        mc = paper_config(16, 0.8)
        d = mc.design_point()
        assert d.area == 16.0
        assert d.perf == pytest.approx(mc.speedup)
        assert d.power == pytest.approx(mc.power)

    def test_default_name_describes_structure(self):
        name = paper_config(16, 0.8).design_point().name
        assert "16" in name and "4" in name


class TestDegenerateFractions:
    def test_fully_serial_runs_on_big_core(self):
        mc = paper_config(8, 0.0)
        assert mc.speedup == pytest.approx(2.0)  # sqrt(4)

    def test_fully_parallel_runs_on_small_cores(self):
        mc = paper_config(8, 1.0)
        assert mc.speedup == pytest.approx(4.0)  # N - M small cores
