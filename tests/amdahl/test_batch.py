"""Columnar Amdahl/Pollack kernels must be bit-exact with the scalar
multicore models, and the asymmetric validity mask must mirror the
scalar ``DomainError`` corners exactly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amdahl.asymmetric import AsymmetricMulticore
from repro.amdahl.batch import (
    asymmetric_energy,
    asymmetric_power,
    asymmetric_speedup,
    asymmetric_valid_mask,
    dynamic_energy,
    dynamic_power,
    dynamic_speedup,
    pollack_energy_array,
    pollack_performance_array,
    pollack_power_array,
    symmetric_energy,
    symmetric_power,
    symmetric_speedup,
)
from repro.amdahl.dynamic import DynamicMulticore
from repro.amdahl.pollack import pollack_energy, pollack_performance, pollack_power
from repro.amdahl.symmetric import SymmetricMulticore
from repro.core.errors import DomainError, ValidationError

CORES = np.asarray([1, 2, 3, 8, 64, 256])
FRACTIONS = np.asarray([0.0, 0.5, 0.9, 0.99, 1.0])


class TestSymmetricKernels:
    def test_bit_exact_across_grid(self):
        for f in FRACTIONS:
            fs = np.full(CORES.shape, f)
            speedup = symmetric_speedup(CORES, fs)
            energy = symmetric_energy(CORES, fs, 0.3)
            power = symmetric_power(CORES, fs, 0.3)
            for i, n in enumerate(CORES):
                model = SymmetricMulticore(
                    cores=int(n), parallel_fraction=float(f), leakage=0.3
                )
                assert speedup[i] == model.speedup
                assert energy[i] == model.energy
                assert power[i] == model.power

    def test_broadcasting(self):
        speedup = symmetric_speedup(CORES[:, None], FRACTIONS[None, :])
        assert speedup.shape == (len(CORES), len(FRACTIONS))

    def test_rejects_fractional_core_counts(self):
        with pytest.raises(ValidationError):
            symmetric_speedup([1.5], [0.5])

    def test_rejects_out_of_range_fractions(self):
        with pytest.raises(ValidationError):
            symmetric_speedup([2], [1.5])


class TestAsymmetricKernels:
    def test_valid_mask_mirrors_scalar_domain_errors(self):
        total = np.repeat(np.arange(2, 18), 17)
        big = np.tile(np.arange(1, 18), 16)
        mask = asymmetric_valid_mask(total, big)
        for n, m, ok in zip(total, big, mask):
            if ok:
                AsymmetricMulticore(
                    total_bces=int(n), big_core_bces=int(m), parallel_fraction=0.5
                )
            else:
                with pytest.raises(DomainError):
                    AsymmetricMulticore(
                        total_bces=int(n),
                        big_core_bces=int(m),
                        parallel_fraction=0.5,
                    )

    def test_bit_exact_on_valid_corners(self):
        total = np.repeat(np.arange(2, 34), 33)
        big = np.tile(np.arange(1, 34), 32)
        mask = asymmetric_valid_mask(total, big)
        n, m = total[mask], big[mask]
        f = np.full(n.shape, 0.9)
        speedup = asymmetric_speedup(n, m, f)
        energy = asymmetric_energy(n, m, f, 0.3)
        power = asymmetric_power(n, m, f, 0.3)
        for i in range(len(n)):
            model = AsymmetricMulticore(
                total_bces=int(n[i]),
                big_core_bces=int(m[i]),
                parallel_fraction=0.9,
                leakage=0.3,
            )
            assert speedup[i] == model.speedup
            assert energy[i] == model.energy
            assert power[i] == model.power


class TestDynamicKernels:
    def test_bit_exact_across_grid(self):
        for f in FRACTIONS:
            fs = np.full(CORES.shape, f)
            speedup = dynamic_speedup(CORES, fs)
            power = dynamic_power(CORES, fs)
            energy = dynamic_energy(CORES, fs)
            for i, n in enumerate(CORES):
                model = DynamicMulticore(bces=int(n), parallel_fraction=float(f))
                assert speedup[i] == model.speedup
                assert power[i] == model.power
                assert energy[i] == model.energy


class TestPollackKernels:
    def test_bit_exact(self):
        bces = np.asarray([1.0, 2.0, 4.0, 7.0, 64.0])
        perf = pollack_performance_array(bces)
        power = pollack_power_array(bces)
        energy = pollack_energy_array(bces)
        for i, b in enumerate(bces):
            assert perf[i] == pollack_performance(float(b))
            assert power[i] == pollack_power(float(b))
            assert energy[i] == pollack_energy(float(b))

    def test_rejects_non_positive_bces(self):
        with pytest.raises(ValidationError):
            pollack_performance_array([1.0, 0.0])
