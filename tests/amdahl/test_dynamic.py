"""Unit tests for the dynamic multicore extension."""

from __future__ import annotations

import math

import pytest

from repro.amdahl.asymmetric import AsymmetricMulticore
from repro.amdahl.dynamic import DynamicMulticore
from repro.amdahl.symmetric import SymmetricMulticore
from repro.core.errors import ValidationError


class TestSpeedup:
    def test_hill_marty_dynamic_formula(self):
        mc = DynamicMulticore(16, 0.8)
        expected = 1.0 / (0.2 / math.sqrt(16) + 0.8 / 16)
        assert mc.speedup == pytest.approx(expected)

    def test_upper_bounds_symmetric(self):
        """Dynamic >= symmetric for every configuration (it fuses for
        the serial phase)."""
        for n in (4, 16, 32):
            for f in (0.3, 0.8, 0.95):
                assert (
                    DynamicMulticore(n, f).speedup
                    >= SymmetricMulticore(n, f).speedup - 1e-12
                )

    def test_upper_bounds_asymmetric(self):
        for f in (0.3, 0.8, 0.95):
            dyn = DynamicMulticore(16, f).speedup
            asym = AsymmetricMulticore(
                total_bces=16, big_core_bces=4, parallel_fraction=f
            ).speedup
            assert dyn >= asym - 1e-12

    def test_single_bce(self):
        assert DynamicMulticore(1, 0.5).speedup == pytest.approx(1.0)


class TestPowerEnergy:
    def test_power_is_bce_count(self):
        assert DynamicMulticore(16, 0.8).power == 16.0

    def test_energy_is_power_over_speedup(self):
        mc = DynamicMulticore(16, 0.8)
        assert mc.energy == pytest.approx(16.0 / mc.speedup)

    def test_worst_in_class_power(self):
        """Dynamic burns more average power than symmetric — the
        weakly-sustainable trade-off the module docstring states."""
        assert DynamicMulticore(16, 0.8).power > SymmetricMulticore(16, 0.8).power


class TestValidation:
    def test_rejects_zero_bces(self):
        with pytest.raises(ValidationError):
            DynamicMulticore(0, 0.5)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValidationError):
            DynamicMulticore(4, -0.1)


class TestDesignPoint:
    def test_fields(self):
        mc = DynamicMulticore(8, 0.9)
        d = mc.design_point()
        assert d.area == 8.0
        assert d.perf == pytest.approx(mc.speedup)
        assert d.power == 8.0
