"""Unit tests for Pollack's rule."""

from __future__ import annotations

import math

import pytest

from repro.amdahl.pollack import (
    big_core_design,
    pollack_energy,
    pollack_performance,
    pollack_power,
)
from repro.core.errors import ValidationError


class TestPollackLaws:
    def test_performance_sqrt(self):
        assert pollack_performance(4.0) == 2.0
        assert pollack_performance(32.0) == pytest.approx(math.sqrt(32))

    def test_one_bce_is_unit(self):
        assert pollack_performance(1.0) == 1.0
        assert pollack_power(1.0) == 1.0
        assert pollack_energy(1.0) == 1.0

    def test_power_linear(self):
        assert pollack_power(7.0) == 7.0

    def test_energy_is_sqrt(self):
        """E = P / S = N / sqrt(N) = sqrt(N) — the paper's statement."""
        assert pollack_energy(16.0) == pytest.approx(4.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValidationError):
            pollack_performance(0.0)


class TestBigCoreDesign:
    def test_fields(self):
        d = big_core_design(32)
        assert d.area == 32.0
        assert d.perf == pytest.approx(math.sqrt(32))
        assert d.power == 32.0
        assert d.energy == pytest.approx(math.sqrt(32))

    def test_default_name(self):
        assert "32" in big_core_design(32).name

    def test_custom_name(self):
        assert big_core_design(4, name="big").name == "big"

    def test_diminishing_returns(self):
        """Perf per area falls as the core grows (the multicore case)."""
        small = big_core_design(4)
        large = big_core_design(16)
        assert large.perf / large.area < small.perf / small.area
