"""Unit tests for the symmetric multicore model (paper Eq. 1-3)."""

from __future__ import annotations

import pytest

from repro.amdahl.symmetric import DEFAULT_LEAKAGE, SymmetricMulticore
from repro.core.errors import ValidationError


class TestConstruction:
    def test_default_leakage_is_paper_gamma(self):
        assert DEFAULT_LEAKAGE == 0.2
        assert SymmetricMulticore(4, 0.5).leakage == 0.2

    def test_rejects_zero_cores(self):
        with pytest.raises(ValidationError):
            SymmetricMulticore(0, 0.5)

    def test_rejects_fraction_outside_unit(self):
        with pytest.raises(ValidationError):
            SymmetricMulticore(4, 1.5)

    def test_rejects_bad_leakage(self):
        with pytest.raises(ValidationError):
            SymmetricMulticore(4, 0.5, leakage=-0.1)


class TestSpeedup:
    def test_amdahl_formula(self):
        mc = SymmetricMulticore(4, 0.5)
        assert mc.speedup == pytest.approx(1.0 / (0.5 + 0.5 / 4))

    def test_single_core_no_speedup(self):
        assert SymmetricMulticore(1, 0.9).speedup == pytest.approx(1.0)

    def test_fully_serial_no_speedup(self):
        assert SymmetricMulticore(32, 0.0).speedup == pytest.approx(1.0)

    def test_fully_parallel_linear_speedup(self):
        assert SymmetricMulticore(32, 1.0).speedup == pytest.approx(32.0)

    def test_speedup_bounded_by_core_count(self):
        for n in (2, 8, 32):
            for f in (0.3, 0.8, 0.95):
                s = SymmetricMulticore(n, f).speedup
                assert 1.0 <= s <= n

    def test_speedup_monotone_in_cores(self):
        speedups = [SymmetricMulticore(n, 0.9).speedup for n in (1, 2, 4, 8, 16, 32)]
        assert speedups == sorted(speedups)

    def test_speedup_monotone_in_parallelism(self):
        speedups = [SymmetricMulticore(16, f).speedup for f in (0.1, 0.5, 0.9, 0.99)]
        assert speedups == sorted(speedups)


class TestEnergy:
    def test_paper_eq3(self):
        mc = SymmetricMulticore(32, 0.95, leakage=0.2)
        assert mc.energy == pytest.approx(1.0 + 0.05 * 31 * 0.2)

    def test_no_leakage_unit_energy(self):
        """gamma = 0: idle cores cost nothing, energy is always 1."""
        assert SymmetricMulticore(32, 0.5, leakage=0.0).energy == 1.0

    def test_fully_parallel_unit_energy(self):
        """f = 1: no serial phase, no idle leakage energy."""
        assert SymmetricMulticore(32, 1.0, leakage=0.2).energy == pytest.approx(1.0)

    def test_energy_grows_with_cores_for_serial_code(self):
        energies = [SymmetricMulticore(n, 0.5).energy for n in (1, 4, 16)]
        assert energies == sorted(energies)


class TestPower:
    def test_paper_eq2(self):
        mc = SymmetricMulticore(32, 0.95, leakage=0.2)
        expected = (1 + 0.05 * 31 * 0.2) / (0.05 + 0.95 / 32)
        assert mc.power == pytest.approx(expected)

    def test_power_equals_energy_times_speedup(self):
        mc = SymmetricMulticore(16, 0.8)
        assert mc.power == pytest.approx(mc.energy * mc.speedup)

    def test_finding1_numbers(self):
        """32 BCEs, f=0.95: P = 16.44 (vs 32 for the big single core)."""
        mc = SymmetricMulticore(32, 0.95)
        assert mc.power == pytest.approx(16.439, rel=1e-3)


class TestDesignPoint:
    def test_fields_match_model(self):
        mc = SymmetricMulticore(8, 0.8)
        d = mc.design_point()
        assert d.area == 8.0
        assert d.perf == pytest.approx(mc.speedup)
        assert d.power == pytest.approx(mc.power)
        assert d.energy == pytest.approx(mc.energy)

    def test_custom_name(self):
        assert SymmetricMulticore(8, 0.8).design_point("mc8").name == "mc8"

    def test_timing_decomposition_sums_to_exec_time(self):
        mc = SymmetricMulticore(8, 0.8)
        assert mc.serial_time + mc.parallel_time == pytest.approx(1.0 / mc.speedup)
