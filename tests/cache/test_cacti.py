"""Unit tests for the mini-CACTI cache area/energy model."""

from __future__ import annotations

import pytest

from repro.cache.cacti import CACTI_65NM_LLC, CactiCacheModel
from repro.core.errors import ValidationError


class TestAnchors:
    def test_base_anchor_exact(self):
        assert CACTI_65NM_LLC.area_factor(1.0) == pytest.approx(1.0)
        assert CACTI_65NM_LLC.access_energy_nj(1.0) == pytest.approx(0.55)

    def test_16mb_anchor_exact(self):
        """The paper's quoted CACTI numbers are hit exactly."""
        assert CACTI_65NM_LLC.area_factor(16.0) == pytest.approx(20.7)
        assert CACTI_65NM_LLC.access_energy_nj(16.0) == pytest.approx(2.9)

    def test_area_slightly_superlinear(self):
        exponent = CACTI_65NM_LLC.area_exponent
        assert 1.0 < exponent < 1.2

    def test_energy_sublinear(self):
        exponent = CACTI_65NM_LLC.energy_exponent
        assert 0.4 < exponent < 0.8


class TestInterpolation:
    @pytest.mark.parametrize("size", [2.0, 4.0, 8.0])
    def test_monotone_between_anchors(self, size):
        assert 1.0 < CACTI_65NM_LLC.area_factor(size) < 20.7
        assert 0.55 < CACTI_65NM_LLC.access_energy_nj(size) < 2.9

    def test_area_monotone(self):
        sizes = [1, 2, 4, 8, 16]
        factors = [CACTI_65NM_LLC.area_factor(s) for s in sizes]
        assert factors == sorted(factors)

    def test_doubling_area_factor_consistent(self):
        """Power law: factor(2s)/factor(s) is size-independent."""
        r1 = CACTI_65NM_LLC.area_factor(2.0) / CACTI_65NM_LLC.area_factor(1.0)
        r2 = CACTI_65NM_LLC.area_factor(8.0) / CACTI_65NM_LLC.area_factor(4.0)
        assert r1 == pytest.approx(r2)

    def test_energy_factor_relative(self):
        assert CACTI_65NM_LLC.access_energy_factor(16.0) == pytest.approx(2.9 / 0.55)


class TestValidation:
    def test_rejects_anchor_not_larger_than_base(self):
        with pytest.raises(ValidationError):
            CactiCacheModel(base_size_mb=4.0, anchor_size_mb=4.0)

    def test_rejects_non_positive_size_query(self):
        with pytest.raises(ValidationError):
            CACTI_65NM_LLC.area_factor(0.0)

    def test_rejects_non_positive_anchor_energy(self):
        with pytest.raises(ValidationError):
            CactiCacheModel(anchor_access_energy_nj=0.0)


class TestCustomModel:
    def test_linear_area_model(self):
        model = CactiCacheModel(anchor_area_factor=16.0)  # exactly linear
        assert model.area_exponent == pytest.approx(1.0)
        assert model.area_factor(4.0) == pytest.approx(4.0)
