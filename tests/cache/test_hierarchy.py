"""Unit tests for the memory-hierarchy workload model (paper §5.5)."""

from __future__ import annotations

import pytest

from repro.cache.hierarchy import (
    PAPER_LLC_WORKLOAD,
    CachedProcessor,
    MemoryBoundWorkload,
)
from repro.core.errors import ValidationError


class TestWorkload:
    def test_paper_defaults(self):
        assert PAPER_LLC_WORKLOAD.memory_time_share == 0.8
        assert PAPER_LLC_WORKLOAD.memory_energy_share == 0.8
        assert PAPER_LLC_WORKLOAD.core_time_share == pytest.approx(0.2)

    def test_energy_shares_sum_to_one(self):
        w = PAPER_LLC_WORKLOAD
        assert w.core_energy_share + w.cache_energy_share + w.memory_energy_share == (
            pytest.approx(1.0)
        )

    def test_rejects_oversubscribed_energy(self):
        with pytest.raises(ValidationError):
            MemoryBoundWorkload(memory_energy_share=0.9, cache_energy_share=0.2)

    def test_rejects_bad_shares(self):
        with pytest.raises(ValidationError):
            MemoryBoundWorkload(memory_time_share=1.2)


class TestCachedProcessorBaseline:
    def test_base_configuration_is_unity(self):
        proc = CachedProcessor(llc_size_mb=1.0)
        assert proc.area == pytest.approx(1.0)
        assert proc.exec_time == pytest.approx(1.0)
        assert proc.energy == pytest.approx(1.0)
        assert proc.power == pytest.approx(1.0)
        assert proc.perf == pytest.approx(1.0)


class TestCachedProcessorScaling:
    def test_16mb_performance_paper_value(self):
        """T(16MB) = 0.2 + 0.8*0.25 = 0.4 -> perf 2.5x, the paper's
        Figure 6 x-axis maximum."""
        proc = CachedProcessor(llc_size_mb=16.0)
        assert proc.perf == pytest.approx(2.5)

    def test_16mb_chip_area(self):
        """(1 + 0.25*20.7)/1.25 = 4.94x chip area."""
        proc = CachedProcessor(llc_size_mb=16.0)
        assert proc.area == pytest.approx((1 + 0.25 * 20.7) / 1.25)

    def test_miss_ratio_uses_sqrt_rule(self):
        assert CachedProcessor(llc_size_mb=4.0).miss_ratio == pytest.approx(0.5)

    def test_energy_decomposition(self):
        proc = CachedProcessor(llc_size_mb=4.0)
        w = proc.workload
        expected = (
            w.core_energy_share
            + w.cache_energy_share * proc.cache_energy_factor
            + w.memory_energy_share * 0.5
        )
        assert proc.energy == pytest.approx(expected)

    def test_larger_cache_larger_area(self):
        areas = [CachedProcessor(llc_size_mb=s).area for s in (1, 2, 4, 8, 16)]
        assert areas == sorted(areas)

    def test_larger_cache_higher_perf(self):
        perfs = [CachedProcessor(llc_size_mb=s).perf for s in (1, 2, 4, 8, 16)]
        assert perfs == sorted(perfs)

    def test_energy_dips_then_rises(self):
        """Memory energy falls with sqrt(size) but cache energy rises;
        for the paper's split the net energy keeps falling through
        16 MB (memory dominates) — assert the direction."""
        energies = [CachedProcessor(llc_size_mb=s).energy for s in (1, 2, 4, 8, 16)]
        assert energies[1] < energies[0]

    def test_power_is_energy_over_time(self):
        proc = CachedProcessor(llc_size_mb=8.0)
        assert proc.power == pytest.approx(proc.energy / proc.exec_time)

    def test_design_point_naming(self):
        assert "8" in CachedProcessor(llc_size_mb=8.0).design_point().name

    def test_custom_base_size(self):
        proc = CachedProcessor(llc_size_mb=4.0, base_llc_size_mb=4.0)
        assert proc.miss_ratio == 1.0
        assert proc.area == pytest.approx(1.0)

    def test_rejects_bad_size(self):
        with pytest.raises(ValidationError):
            CachedProcessor(llc_size_mb=0.0)
