"""Unit tests for the LLC sweep study (Figure 6, Finding #8)."""

from __future__ import annotations

import pytest

from repro.cache.hierarchy import CachedProcessor, MemoryBoundWorkload
from repro.cache.llc_study import (
    PAPER_LLC_SIZES_MB,
    classify_llc,
    llc_sweep,
)
from repro.core.classify import Sustainability


class TestSweepStructure:
    def test_paper_sizes(self):
        assert PAPER_LLC_SIZES_MB == (1.0, 2.0, 4.0, 8.0, 16.0)

    def test_sweep_length_and_order(self):
        points = llc_sweep(0.8)
        assert [p.size_mb for p in points] == list(PAPER_LLC_SIZES_MB)

    def test_baseline_point_is_unity(self):
        base = llc_sweep(0.2)[0]
        assert base.perf == pytest.approx(1.0)
        assert base.ncf_fixed_work == pytest.approx(1.0)
        assert base.ncf_fixed_time == pytest.approx(1.0)

    def test_perf_monotone(self):
        perfs = [p.perf for p in llc_sweep(0.8)]
        assert perfs == sorted(perfs)


class TestFinding8:
    def test_embodied_dominated_never_pays(self):
        """Every size above 1 MB has NCF > 1 on both axes at alpha=0.8."""
        for point in llc_sweep(0.8)[1:]:
            assert point.ncf_fixed_work > 1.0
            assert point.ncf_fixed_time > 1.0
            assert point.category is Sustainability.LESS

    def test_operational_dominated_small_cache_weakly_sustainable(self):
        """2 MB at alpha=0.2: fixed-work < 1, fixed-time > 1."""
        point = llc_sweep(0.2)[1]
        assert point.size_mb == 2.0
        assert point.ncf_fixed_work < 1.0
        assert point.ncf_fixed_time > 1.0
        assert point.category is Sustainability.WEAK

    def test_operational_dominated_16mb_not_sustainable(self):
        point = llc_sweep(0.2)[-1]
        assert point.category is Sustainability.LESS

    def test_classify_llc_wrapper(self):
        assert classify_llc(16.0, 0.8) is Sustainability.LESS
        assert classify_llc(2.0, 0.2) is Sustainability.WEAK


class TestTemplates:
    def test_less_memory_bound_workload_worsens_caching(self):
        """A compute-bound workload gains little from a big LLC: NCF at
        16 MB must be higher than for the paper's memory-bound one."""
        compute_bound = CachedProcessor(
            llc_size_mb=1.0,
            workload=MemoryBoundWorkload(
                memory_time_share=0.3, memory_energy_share=0.3
            ),
        )
        default_pts = llc_sweep(0.2)
        compute_pts = llc_sweep(0.2, template=compute_bound)
        assert compute_pts[-1].ncf_fixed_work > default_pts[-1].ncf_fixed_work

    def test_template_size_is_overridden(self):
        """The template's own llc_size_mb must not leak into the sweep."""
        template = CachedProcessor(llc_size_mb=8.0)
        points = llc_sweep(0.5, (1.0, 2.0), template=template)
        assert [p.size_mb for p in points] == [1.0, 2.0]
        assert points[0].ncf_fixed_work == pytest.approx(1.0)
