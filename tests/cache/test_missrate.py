"""Unit tests for the sqrt(2) miss-rate rule."""

from __future__ import annotations

import math

import pytest

from repro.cache.missrate import SQRT2_RULE, MissRateModel
from repro.core.errors import DomainError, ValidationError


class TestSqrtRule:
    def test_base_size_unity(self):
        assert SQRT2_RULE.miss_ratio(1.0) == 1.0

    def test_doubling_cuts_by_sqrt2(self):
        assert SQRT2_RULE.miss_ratio(2.0) == pytest.approx(1 / math.sqrt(2))

    def test_quadrupling_halves(self):
        assert SQRT2_RULE.miss_ratio(4.0) == pytest.approx(0.5)

    def test_16x_quarters(self):
        assert SQRT2_RULE.miss_ratio(16.0) == pytest.approx(0.25)

    def test_shrinking_cache_raises_misses(self):
        assert SQRT2_RULE.miss_ratio(0.5) == pytest.approx(math.sqrt(2))

    def test_custom_base(self):
        assert SQRT2_RULE.miss_ratio(8.0, base_size_mb=2.0) == pytest.approx(0.5)


class TestCustomExponent:
    def test_zero_exponent_flat(self):
        model = MissRateModel(exponent=0.0)
        assert model.miss_ratio(100.0) == 1.0

    def test_linear_exponent(self):
        model = MissRateModel(exponent=1.0)
        assert model.miss_ratio(4.0) == pytest.approx(0.25)

    def test_rejects_exponent_above_one(self):
        with pytest.raises(ValidationError):
            MissRateModel(exponent=1.5)

    def test_rejects_negative_exponent(self):
        with pytest.raises(ValidationError):
            MissRateModel(exponent=-0.5)


class TestInverse:
    def test_round_trip(self):
        target = SQRT2_RULE.miss_ratio(9.0)
        assert SQRT2_RULE.capacity_for_miss_ratio(target) == pytest.approx(9.0)

    def test_halving_misses_needs_4x_capacity(self):
        assert SQRT2_RULE.capacity_for_miss_ratio(0.5) == pytest.approx(4.0)

    def test_flat_model_has_no_inverse(self):
        with pytest.raises(DomainError):
            MissRateModel(exponent=0.0).capacity_for_miss_ratio(0.5)

    def test_rejects_non_positive_target(self):
        with pytest.raises(ValidationError):
            SQRT2_RULE.capacity_for_miss_ratio(0.0)
