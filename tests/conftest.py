"""Shared fixtures for the FOCAL reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.design import DesignPoint
from repro.core.scenario import EMBODIED_DOMINATED, OPERATIONAL_DOMINATED
from repro.dse import parallel as _parallel


@pytest.fixture(scope="session", autouse=True)
def _no_leaked_segments():
    """Leak detector: after the whole suite, every shared-memory
    segment and spill file any test created must have been released.

    ``_LIVE_NAMES`` tracks allocations (shm names and ``file:`` spill
    paths) process-wide; a non-empty set here points at the test — or
    engine ``finally`` path — that dropped a block or arena without
    ``release()``.
    """
    yield
    assert _parallel.live_blocks() == frozenset(), (
        "leaked shared segments / spill files: "
        f"{sorted(_parallel.live_blocks())}"
    )


@pytest.fixture
def baseline() -> DesignPoint:
    """The unit design every paper figure normalizes to."""
    return DesignPoint.baseline("baseline")


@pytest.fixture
def better_design() -> DesignPoint:
    """A design strictly better on every axis (strongly sustainable)."""
    return DesignPoint("better", area=0.8, perf=1.2, power=0.9)


@pytest.fixture
def worse_design() -> DesignPoint:
    """A design strictly worse on every axis (less sustainable)."""
    return DesignPoint("worse", area=1.3, perf=0.9, power=1.2)


@pytest.fixture
def weak_design() -> DesignPoint:
    """Energy down but power up: the canonical weakly sustainable shape
    (like runahead execution)."""
    return DesignPoint("weak", area=1.0, perf=1.4, power=1.3)


@pytest.fixture(params=[EMBODIED_DOMINATED, OPERATIONAL_DOMINATED], ids=["emb", "op"])
def weight(request: pytest.FixtureRequest):
    """Both of the paper's alpha regimes."""
    return request.param
