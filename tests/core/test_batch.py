"""Parity tests: vectorized batch kernels vs the scalar reference.

The contract of :mod:`repro.core.batch` is bit-exactness — a sweep
computed through the array kernels must be indistinguishable from the
scalar loop it replaces. These tests assert exact (``==``) agreement on
seeded random inputs, including values exactly on and within the
neutral-boundary tolerance of NCF = 1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import (
    CATEGORIES,
    categories_from_codes,
    category_counts,
    classify_arrays,
    ncf_values,
)
from repro.core.classify import (
    NEUTRAL_ABS_TOL,
    NEUTRAL_REL_TOL,
    Sustainability,
    classify_values,
)
from repro.core.errors import ValidationError
from repro.core.ncf import ncf_from_ratios


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20260805)


class TestNcfValues:
    def test_bit_exact_parity_on_random_inputs(self, rng):
        area = rng.uniform(0.05, 5.0, 2000)
        op = rng.uniform(0.05, 5.0, 2000)
        alphas = rng.uniform(0.0, 1.0, 2000)
        vectorized = ncf_values(area, op, alphas)
        scalar = [
            ncf_from_ratios(float(a), float(o), float(al))
            for a, o, al in zip(area, op, alphas)
        ]
        assert vectorized.tolist() == scalar  # exact, not approx

    def test_scalar_alpha_broadcasts(self, rng):
        area = rng.uniform(0.1, 3.0, 100)
        op = rng.uniform(0.1, 3.0, 100)
        vectorized = ncf_values(area, op, 0.8)
        scalar = [ncf_from_ratios(float(a), float(o), 0.8) for a, o in zip(area, op)]
        assert vectorized.tolist() == scalar

    def test_alpha_array_over_one_design(self):
        alphas = np.linspace(0.0, 1.0, 11)
        values = ncf_values(1.5, 0.5, alphas)
        assert values.shape == alphas.shape
        assert values[0] == 0.5 and values[-1] == 1.5

    def test_rejects_out_of_range_alpha(self):
        with pytest.raises(ValidationError, match="alphas"):
            ncf_values([1.0], [1.0], [1.5])

    def test_rejects_non_positive_ratio(self):
        with pytest.raises(ValidationError, match="area_ratios"):
            ncf_values([1.0, 0.0], [1.0, 1.0], 0.5)
        with pytest.raises(ValidationError, match="op_ratios"):
            ncf_values([1.0], [-2.0], 0.5)

    def test_rejects_non_finite(self):
        with pytest.raises(ValidationError):
            ncf_values([np.nan], [1.0], 0.5)
        with pytest.raises(ValidationError):
            ncf_values([1.0], [np.inf], 0.5)

    def test_empty_arrays(self):
        assert ncf_values([], [], 0.5).size == 0


def boundary_values() -> np.ndarray:
    """NCF values exactly on, just inside and just outside the neutral
    tolerance of 1 (rel_tol 1e-9, abs_tol 1e-12)."""
    eps = NEUTRAL_REL_TOL
    return np.array(
        [
            1.0,
            1.0 + 0.5 * eps,
            1.0 - 0.5 * eps,
            1.0 + eps,  # at the tolerance edge (either verdict; must agree)
            1.0 - eps,
            1.0 + 10 * eps,  # outside
            1.0 - 10 * eps,
            np.nextafter(1.0, 2.0),
            np.nextafter(1.0, 0.0),
            0.5,
            2.0,
            NEUTRAL_ABS_TOL,  # tiny but valid NCF, far below 1
        ]
    )


class TestClassifyArrays:
    def test_parity_on_random_inputs(self, rng):
        ncf_fw = rng.uniform(0.9, 1.1, 5000)
        ncf_ft = rng.uniform(0.9, 1.1, 5000)
        codes = classify_arrays(ncf_fw, ncf_ft)
        scalar = [
            classify_values(float(fw), float(ft)) for fw, ft in zip(ncf_fw, ncf_ft)
        ]
        assert categories_from_codes(codes) == scalar

    def test_parity_on_boundary_grid(self):
        """Every pairing of on/inside/outside-tolerance values."""
        values = boundary_values()
        fw_grid, ft_grid = np.meshgrid(values, values)
        codes = classify_arrays(fw_grid.ravel(), ft_grid.ravel())
        scalar = [
            classify_values(float(fw), float(ft))
            for fw, ft in zip(fw_grid.ravel(), ft_grid.ravel())
        ]
        assert categories_from_codes(codes) == scalar

    def test_parity_with_custom_rel_tol(self, rng):
        ncf_fw = 1.0 + rng.uniform(-3e-4, 3e-4, 2000)
        ncf_ft = 1.0 + rng.uniform(-3e-4, 3e-4, 2000)
        codes = classify_arrays(ncf_fw, ncf_ft, rel_tol=1e-4)
        scalar = [
            classify_values(float(fw), float(ft), rel_tol=1e-4)
            for fw, ft in zip(ncf_fw, ncf_ft)
        ]
        assert categories_from_codes(codes) == scalar

    def test_exact_boundary_is_neutral(self):
        assert categories_from_codes(classify_arrays([1.0], [1.0])) == [
            Sustainability.NEUTRAL
        ]

    def test_neutral_axis_not_worse(self):
        # NCF_fw < 1 with NCF_ft == 1 -> strong (paper Finding #10 reading)
        assert categories_from_codes(classify_arrays([0.9], [1.0])) == [
            Sustainability.STRONG
        ]
        assert categories_from_codes(classify_arrays([1.0], [1.2])) == [
            Sustainability.LESS
        ]

    def test_broadcasting_scalar_axis(self):
        codes = classify_arrays([0.5, 1.5], 0.9)
        assert categories_from_codes(codes) == [
            Sustainability.STRONG,
            Sustainability.WEAK,
        ]

    def test_codes_are_int8(self):
        assert classify_arrays([0.5], [0.5]).dtype == np.int8


class TestCategoryCounts:
    def test_matches_scalar_histogram(self, rng):
        ncf_fw = rng.uniform(0.95, 1.05, 3000)
        ncf_ft = rng.uniform(0.95, 1.05, 3000)
        counts = category_counts(classify_arrays(ncf_fw, ncf_ft))
        scalar: dict[Sustainability, int] = {cat: 0 for cat in Sustainability}
        for fw, ft in zip(ncf_fw, ncf_ft):
            scalar[classify_values(float(fw), float(ft))] += 1
        assert counts == scalar

    def test_includes_zero_count_categories(self):
        counts = category_counts(classify_arrays([0.5], [0.5]))
        assert set(counts) == set(Sustainability)
        assert counts[Sustainability.STRONG] == 1
        assert counts[Sustainability.LESS] == 0

    def test_counts_sum_to_samples(self, rng):
        codes = classify_arrays(rng.uniform(0.5, 2.0, 999), rng.uniform(0.5, 2.0, 999))
        assert sum(category_counts(codes).values()) == 999

    def test_rejects_out_of_range_codes(self):
        with pytest.raises(ValidationError):
            category_counts([7])


class TestCategories:
    def test_order_matches_codes(self):
        assert CATEGORIES == (
            Sustainability.STRONG,
            Sustainability.WEAK,
            Sustainability.LESS,
            Sustainability.NEUTRAL,
        )

    def test_roundtrip(self):
        codes = classify_arrays([0.5, 1.5, 2.0, 1.0], [0.5, 0.5, 2.0, 1.0])
        assert categories_from_codes(codes) == [
            Sustainability.STRONG,
            Sustainability.WEAK,
            Sustainability.LESS,
            Sustainability.NEUTRAL,
        ]
