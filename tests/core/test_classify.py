"""Unit tests for the strong/weak/less sustainability classification."""

from __future__ import annotations

import pytest

from repro.core.classify import (
    Sustainability,
    classify,
    classify_assessment,
    classify_pair,
    classify_values,
)
from repro.core.design import DesignPoint
from repro.core.ncf import assess
from repro.core.scenario import EMBODIED_DOMINATED


class TestClassifyValues:
    def test_strong(self):
        assert classify_values(0.9, 0.95) is Sustainability.STRONG

    def test_less(self):
        assert classify_values(1.1, 1.05) is Sustainability.LESS

    @pytest.mark.parametrize("fw,ft", [(0.9, 1.1), (1.1, 0.9)])
    def test_weak_either_direction(self, fw, ft):
        assert classify_values(fw, ft) is Sustainability.WEAK

    def test_neutral_both_exactly_one(self):
        assert classify_values(1.0, 1.0) is Sustainability.NEUTRAL

    def test_one_axis_neutral_other_better_is_strong(self):
        """Matches the paper's reading of die shrink under post-Dennard
        fixed-time (power unchanged) as strongly sustainable."""
        assert classify_values(0.9, 1.0) is Sustainability.STRONG

    def test_one_axis_neutral_other_worse_is_less(self):
        assert classify_values(1.0, 1.2) is Sustainability.LESS

    def test_boundary_tolerance(self):
        assert classify_values(0.9, 1.0 + 1e-12) is Sustainability.STRONG

    def test_custom_tolerance(self):
        # With a loose tolerance 1.005 counts as the boundary.
        assert classify_values(0.9, 1.005, rel_tol=0.01) is Sustainability.STRONG
        assert classify_values(0.9, 1.005) is Sustainability.WEAK

    def test_trichotomy_covers_plane(self):
        """Every (fw, ft) pair classifies to exactly one category."""
        values = (0.5, 1.0, 1.5)
        for fw in values:
            for ft in values:
                category = classify_values(fw, ft)
                assert isinstance(category, Sustainability)


class TestClassifyDesigns:
    def test_strong_design(self, better_design, baseline):
        verdict = classify(better_design, baseline, alpha=0.5)
        assert verdict.category is Sustainability.STRONG
        assert verdict.is_strong and not verdict.is_weak and not verdict.is_less

    def test_less_design(self, worse_design, baseline):
        assert classify(worse_design, baseline, alpha=0.5).is_less

    def test_weak_design(self, weak_design, baseline):
        """Energy improves (power/perf = 0.93) but power worsens."""
        verdict = classify(weak_design, baseline, alpha=0.2)
        assert verdict.is_weak

    def test_self_comparison_is_neutral(self, baseline):
        assert classify(baseline, baseline, 0.5).category is Sustainability.NEUTRAL

    def test_verdict_records_evidence(self, better_design, baseline):
        verdict = classify(better_design, baseline, alpha=0.3)
        assert verdict.design == "better"
        assert verdict.baseline == "baseline"
        assert verdict.alpha == 0.3
        assert verdict.ncf_fixed_work < 1.0
        assert verdict.ncf_fixed_time < 1.0

    def test_as_dict(self, better_design, baseline):
        payload = classify(better_design, baseline, 0.5).as_dict()
        assert payload["category"] == "strongly sustainable"

    def test_str_mentions_category(self, better_design, baseline):
        assert "strongly sustainable" in str(classify(better_design, baseline, 0.5))


class TestAlphaDependence:
    def test_category_can_flip_with_alpha(self, baseline):
        """Small area increase, big energy/power win: less sustainable
        at alpha ~ 1, strongly sustainable at low alpha."""
        d = DesignPoint("accel", area=1.5, perf=1.0, power=0.3)
        assert classify(d, baseline, alpha=0.95).is_less
        assert classify(d, baseline, alpha=0.1).is_strong


class TestClassifyAssessment:
    def test_matches_direct_classification(self, weak_design, baseline):
        assessment = assess(weak_design, baseline, EMBODIED_DOMINATED)
        assert classify_assessment(assessment) is classify(
            weak_design, baseline, EMBODIED_DOMINATED.alpha
        ).category


class TestClassifyPair:
    def test_returns_consistent_verdict_and_assessment(self, better_design, baseline):
        verdict, assessment = classify_pair(
            better_design, baseline, EMBODIED_DOMINATED
        )
        assert verdict.alpha == EMBODIED_DOMINATED.alpha
        assert assessment.fixed_work.nominal == pytest.approx(verdict.ncf_fixed_work)
        assert assessment.fixed_time.nominal == pytest.approx(verdict.ncf_fixed_time)
