"""Unit tests for repro.core.design.DesignPoint."""

from __future__ import annotations

import pytest

from repro.core.design import DesignPoint
from repro.core.errors import ValidationError


class TestConstruction:
    def test_basic(self):
        d = DesignPoint("core", area=2.0, perf=1.5, power=3.0)
        assert d.name == "core"
        assert d.area == 2.0
        assert d.perf == 1.5
        assert d.power == 3.0

    def test_baseline_is_unit(self):
        b = DesignPoint.baseline()
        assert (b.area, b.perf, b.power, b.energy) == (1.0, 1.0, 1.0, 1.0)

    def test_baseline_custom_name(self):
        assert DesignPoint.baseline("InO").name == "InO"

    @pytest.mark.parametrize("field", ["area", "perf", "power"])
    def test_rejects_non_positive(self, field):
        kwargs = {"area": 1.0, "perf": 1.0, "power": 1.0, field: 0.0}
        with pytest.raises(ValidationError, match=field):
            DesignPoint("bad", **kwargs)

    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError, match="name"):
            DesignPoint("", area=1.0, perf=1.0, power=1.0)

    def test_rejects_nan_area(self):
        with pytest.raises(ValidationError):
            DesignPoint("bad", area=float("nan"), perf=1.0, power=1.0)

    def test_frozen(self):
        d = DesignPoint.baseline()
        with pytest.raises(AttributeError):
            d.area = 2.0  # type: ignore[misc]


class TestFromEnergy:
    def test_power_derived_from_energy(self):
        d = DesignPoint.from_energy("x", area=1.0, perf=2.0, energy=0.5)
        assert d.power == pytest.approx(1.0)
        assert d.energy == pytest.approx(0.5)

    def test_round_trip_identity(self):
        original = DesignPoint("x", area=1.2, perf=1.7, power=2.3)
        rebuilt = DesignPoint.from_energy(
            "x", area=original.area, perf=original.perf, energy=original.energy
        )
        assert rebuilt.power == pytest.approx(original.power)

    def test_rejects_non_positive_energy(self):
        with pytest.raises(ValidationError, match="energy"):
            DesignPoint.from_energy("x", area=1.0, perf=1.0, energy=0.0)


class TestDerivedQuantities:
    def test_energy_is_power_over_perf(self):
        d = DesignPoint("x", area=1.0, perf=2.0, power=3.0)
        assert d.energy == pytest.approx(1.5)

    def test_edp(self):
        d = DesignPoint("x", area=1.0, perf=2.0, power=3.0)
        assert d.edp == pytest.approx(1.5 / 2.0)


class TestRatios:
    def test_ratios_against_baseline(self, baseline):
        d = DesignPoint("x", area=2.0, perf=4.0, power=8.0)
        assert d.area_ratio(baseline) == pytest.approx(2.0)
        assert d.perf_ratio(baseline) == pytest.approx(4.0)
        assert d.power_ratio(baseline) == pytest.approx(8.0)
        assert d.energy_ratio(baseline) == pytest.approx(2.0)

    def test_self_ratios_are_one(self):
        d = DesignPoint("x", area=3.0, perf=2.0, power=5.0)
        assert d.area_ratio(d) == 1.0
        assert d.energy_ratio(d) == 1.0
        assert d.power_ratio(d) == 1.0
        assert d.perf_ratio(d) == 1.0

    def test_ratio_antisymmetry(self):
        a = DesignPoint("a", area=2.0, perf=1.5, power=1.2)
        b = DesignPoint("b", area=5.0, perf=0.7, power=2.4)
        assert a.area_ratio(b) == pytest.approx(1.0 / b.area_ratio(a))


class TestTransformations:
    def test_normalized_to(self):
        base = DesignPoint("base", area=2.0, perf=2.0, power=4.0)
        d = DesignPoint("x", area=4.0, perf=3.0, power=4.0)
        n = d.normalized_to(base)
        assert n.area == pytest.approx(2.0)
        assert n.perf == pytest.approx(1.5)
        assert n.power == pytest.approx(1.0)
        assert n.name == "x"

    def test_normalized_to_self_is_unit(self):
        d = DesignPoint("x", area=7.0, perf=3.0, power=2.0)
        n = d.normalized_to(d)
        assert (n.area, n.perf, n.power) == (1.0, 1.0, 1.0)

    def test_renamed(self):
        d = DesignPoint.baseline("old").renamed("new")
        assert d.name == "new"
        assert d.area == 1.0

    def test_scaled(self):
        d = DesignPoint.baseline().scaled(area=1.1, perf=2.0, power=0.5)
        assert d.area == pytest.approx(1.1)
        assert d.perf == pytest.approx(2.0)
        assert d.power == pytest.approx(0.5)

    def test_scaled_rejects_zero_factor(self):
        with pytest.raises(ValidationError):
            DesignPoint.baseline().scaled(area=0.0)

    def test_scaled_preserves_energy_identity(self):
        d = DesignPoint("x", area=1.0, perf=2.0, power=3.0).scaled(perf=2.0)
        assert d.energy == pytest.approx(d.power / d.perf)


class TestSerialization:
    def test_as_dict_round_trip(self):
        d = DesignPoint("x", area=2.0, perf=1.5, power=3.0)
        payload = d.as_dict()
        assert payload["name"] == "x"
        assert payload["energy"] == pytest.approx(2.0)
        rebuilt = DesignPoint(
            name=payload["name"],
            area=payload["area"],
            perf=payload["perf"],
            power=payload["power"],
        )
        assert rebuilt == d
