"""Tests for the exception hierarchy contract."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    ConfigurationError,
    ConvergenceError,
    DomainError,
    ReproError,
    UnknownStudyError,
    ValidationError,
)


@pytest.mark.parametrize(
    "exc",
    [ValidationError, DomainError, ConvergenceError, ConfigurationError, UnknownStudyError],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_validation_error_is_value_error():
    """Library users catching ValueError keep working."""
    assert issubclass(ValidationError, ValueError)
    assert issubclass(DomainError, ValueError)
    assert issubclass(ConfigurationError, ValueError)


def test_convergence_error_is_runtime_error():
    assert issubclass(ConvergenceError, RuntimeError)


def test_unknown_study_is_key_error():
    assert issubclass(UnknownStudyError, KeyError)


def test_catching_base_class_catches_all():
    with pytest.raises(ReproError):
        raise DomainError("outside domain")
