"""Unit tests for classical metrics and their disagreement with NCF."""

from __future__ import annotations

import pytest

from repro.core.classify import Sustainability
from repro.core.design import DesignPoint
from repro.core.metrics import (
    ClassicMetric,
    disagreement,
    metric_ratio,
    metric_value,
)


@pytest.fixture
def ooo() -> DesignPoint:
    return DesignPoint("OoO", area=1.39, perf=1.75, power=2.32)


class TestMetricValues:
    def test_edp(self, baseline):
        d = DesignPoint("x", area=1.0, perf=2.0, power=2.0)  # energy 1
        assert metric_value(d, ClassicMetric.EDP) == pytest.approx(0.5)

    def test_ed2p(self):
        d = DesignPoint("x", area=1.0, perf=2.0, power=2.0)
        assert metric_value(d, ClassicMetric.ED2P) == pytest.approx(0.25)

    def test_perf_per_watt(self):
        d = DesignPoint("x", area=1.0, perf=3.0, power=1.5)
        assert metric_value(d, ClassicMetric.PERF_PER_WATT) == pytest.approx(2.0)

    def test_perf_per_area(self):
        d = DesignPoint("x", area=2.0, perf=3.0, power=1.0)
        assert metric_value(d, ClassicMetric.PERF_PER_AREA) == pytest.approx(1.5)

    def test_energy(self):
        d = DesignPoint("x", area=1.0, perf=2.0, power=3.0)
        assert metric_value(d, ClassicMetric.ENERGY) == pytest.approx(1.5)


class TestMetricRatio:
    def test_normalized_direction(self, baseline):
        """> 1 always means better, regardless of metric polarity."""
        good = DesignPoint("good", area=0.5, perf=2.0, power=0.5)
        for metric in ClassicMetric:
            assert metric_ratio(good, baseline, metric) > 1.0

    def test_self_ratio_is_one(self, baseline):
        for metric in ClassicMetric:
            assert metric_ratio(baseline, baseline, metric) == pytest.approx(1.0)

    def test_ooo_wins_edp_vs_ino(self, ooo, baseline):
        """The classical justification for OoO: better EDP than InO."""
        assert metric_ratio(ooo, baseline, ClassicMetric.EDP) > 1.0


class TestDisagreement:
    def test_ooo_conflict_edp_vs_focal(self, ooo, baseline):
        """The paper's point, sharpened: OoO improves EDP over InO but
        is less sustainable under FOCAL in every regime."""
        for alpha in (0.2, 0.8):
            result = disagreement(ooo, baseline, ClassicMetric.EDP, alpha)
            assert result.metric_says_better
            assert result.focal_category is Sustainability.LESS
            assert result.conflicting

    def test_no_conflict_when_aligned(self, baseline):
        good = DesignPoint("good", area=0.5, perf=2.0, power=0.5)
        result = disagreement(good, baseline, ClassicMetric.EDP, 0.5)
        assert result.metric_says_better
        assert result.focal_category is Sustainability.STRONG
        assert not result.conflicting

    def test_metric_rejecting_strong_design_flags_conflict(self, baseline):
        """A slower but frugal design: perf/watt can reject it while
        FOCAL calls it strongly sustainable."""
        frugal = DesignPoint("frugal", area=0.8, perf=0.5, power=0.55)
        result = disagreement(frugal, baseline, ClassicMetric.PERF_PER_WATT, 0.8)
        assert not result.metric_says_better
        assert result.focal_category is Sustainability.STRONG
        assert result.conflicting

    def test_pipeline_gating_rejected_by_perf_metrics(self, baseline):
        """Finding #16's design is a textbook conflict: strictly
        strongly sustainable, yet slower (perf-oriented metrics can say
        no)."""
        gated = DesignPoint("gated", area=1.0, perf=0.934, power=0.901)
        result = disagreement(gated, baseline, ClassicMetric.PERF_PER_AREA, 0.5)
        assert result.conflicting
