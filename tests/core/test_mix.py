"""Unit tests for time-weighted workload mixes."""

from __future__ import annotations

import pytest

from repro.core.design import DesignPoint
from repro.core.errors import ValidationError
from repro.core.mix import time_weighted_mix
from repro.core.ncf import ncf
from repro.core.scenario import UseScenario


def phase(name: str, perf: float, power: float, area: float = 1.0) -> DesignPoint:
    return DesignPoint(name, area=area, perf=perf, power=power)


class TestComposition:
    def test_single_phase_is_identity(self):
        busy = phase("busy", perf=2.0, power=3.0)
        mix = time_weighted_mix([(busy, 1.0)])
        assert mix.perf == pytest.approx(2.0)
        assert mix.power == pytest.approx(3.0)
        assert mix.area == 1.0

    def test_time_weighted_power_and_throughput(self):
        busy = phase("busy", perf=2.0, power=3.0)
        idle = phase("idle", perf=0.01, power=0.1)
        mix = time_weighted_mix([(busy, 0.25), (idle, 0.75)])
        assert mix.power == pytest.approx(0.25 * 3.0 + 0.75 * 0.1)
        assert mix.perf == pytest.approx(0.25 * 2.0 + 0.75 * 0.01)

    def test_energy_identity_holds(self):
        busy = phase("busy", perf=2.0, power=3.0)
        idle = phase("idle", perf=0.01, power=0.1)
        mix = time_weighted_mix([(busy, 0.5), (idle, 0.5)])
        assert mix.energy == pytest.approx(mix.power / mix.perf)

    def test_default_name_describes_shares(self):
        mix = time_weighted_mix(
            [(phase("decode", 1.0, 0.2), 0.3), (phase("idle", 0.01, 0.05), 0.7)]
        )
        assert "30%" in mix.name and "decode" in mix.name

    def test_custom_name(self):
        mix = time_weighted_mix([(phase("p", 1.0, 1.0), 1.0)], name="duty cycle")
        assert mix.name == "duty cycle"


class TestValidation:
    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            time_weighted_mix([(phase("a", 1, 1), 0.5), (phase("b", 1, 1), 0.4)])

    def test_shares_must_be_fractions(self):
        with pytest.raises(ValidationError):
            time_weighted_mix([(phase("a", 1, 1), 1.5)])

    def test_requires_phases(self):
        with pytest.raises(ValidationError):
            time_weighted_mix([])

    def test_mismatched_areas_rejected(self):
        with pytest.raises(ValidationError, match="one chip"):
            time_weighted_mix(
                [(phase("a", 1, 1, area=1.0), 0.5), (phase("b", 1, 1, area=2.0), 0.5)]
            )


class TestFOCALIntegration:
    def test_duty_cycle_shapes_the_accelerator_verdict(self):
        """An accelerator-equipped SoC compared against the plain core
        under realistic duty cycles: heavy accelerator use must yield a
        strictly lower NCF than light use."""
        from repro.accel.accelerator import HAMEED_H264, AcceleratedSystem

        def soc_at(duty: float) -> DesignPoint:
            return AcceleratedSystem(HAMEED_H264, duty).design_point()

        core = DesignPoint.baseline("core")
        light = time_weighted_mix(
            [(soc_at(0.1), 0.5), (soc_at(0.0), 0.5)], name="light use"
        )
        heavy = time_weighted_mix(
            [(soc_at(0.9), 0.5), (soc_at(0.5), 0.5)], name="heavy use"
        )
        fw = UseScenario.FIXED_WORK
        assert ncf(heavy, core, fw, 0.8) < ncf(light, core, fw, 0.8)

    def test_idle_heavy_mix_is_power_cheap_but_energy_expensive(self):
        """A mostly idle device draws little power but does little
        work: its energy per unit work is worse than the busy phase's —
        the fixed-work/fixed-time distinction at the duty-cycle level."""
        busy = phase("busy", perf=1.0, power=1.0)
        idle = phase("idle", perf=1e-3, power=0.1)
        mix = time_weighted_mix([(busy, 0.2), (idle, 0.8)])
        assert mix.power < busy.power
        assert mix.energy > busy.energy
