"""Unit tests for repro.core.ncf — the NCF metric itself."""

from __future__ import annotations

import pytest

from repro.core.design import DesignPoint
from repro.core.errors import ValidationError
from repro.core.ncf import (
    NCFBand,
    assess,
    ncf,
    ncf_band,
    ncf_from_ratios,
    relative_footprint,
)
from repro.core.scenario import EMBODIED_DOMINATED, E2OWeight, UseScenario

FW = UseScenario.FIXED_WORK
FT = UseScenario.FIXED_TIME


class TestNCFFromRatios:
    def test_affine_combination(self):
        assert ncf_from_ratios(2.0, 0.5, 0.5) == pytest.approx(1.25)

    def test_alpha_zero_is_operational_only(self):
        assert ncf_from_ratios(99.0, 0.4, 0.0) == pytest.approx(0.4)

    def test_alpha_one_is_embodied_only(self):
        assert ncf_from_ratios(1.7, 99.0, 1.0) == pytest.approx(1.7)

    def test_rejects_alpha_outside_unit(self):
        with pytest.raises(ValidationError):
            ncf_from_ratios(1.0, 1.0, 1.5)

    def test_rejects_non_positive_ratio(self):
        with pytest.raises(ValidationError):
            ncf_from_ratios(0.0, 1.0, 0.5)


class TestNCF:
    def test_identity_design_gives_one(self, baseline):
        for scenario in (FW, FT):
            for alpha in (0.0, 0.2, 0.8, 1.0):
                assert ncf(baseline, baseline, scenario, alpha) == pytest.approx(1.0)

    def test_fixed_work_uses_energy(self, baseline):
        # perf 2, power 1 -> energy 0.5: fixed-work rewards it fully.
        d = DesignPoint("x", area=1.0, perf=2.0, power=1.0)
        assert ncf(d, baseline, FW, 0.0) == pytest.approx(0.5)
        assert ncf(d, baseline, FT, 0.0) == pytest.approx(1.0)

    def test_paper_fsc_vs_ino_values(self, baseline):
        """The §5.6 FSC-vs-InO numbers as a canonical worked example."""
        fsc = DesignPoint("FSC", area=1.01, perf=1.64, power=1.01)
        assert ncf(fsc, baseline, FW, 0.8) == pytest.approx(
            0.8 * 1.01 + 0.2 * (1.01 / 1.64)
        )
        assert ncf(fsc, baseline, FT, 0.8) == pytest.approx(1.01)

    def test_below_one_means_lower_footprint(self, better_design, baseline):
        assert ncf(better_design, baseline, FW, 0.5) < 1.0
        assert ncf(better_design, baseline, FT, 0.5) < 1.0

    def test_above_one_means_higher_footprint(self, worse_design, baseline):
        assert ncf(worse_design, baseline, FW, 0.5) > 1.0

    def test_monotone_in_alpha_when_embodied_worse(self, baseline):
        d = DesignPoint("x", area=2.0, perf=1.0, power=0.5)
        values = [ncf(d, baseline, FT, a) for a in (0.1, 0.5, 0.9)]
        assert values == sorted(values)

    def test_reciprocity_not_assumed(self, baseline):
        """NCF(X,Y) * NCF(Y,X) != 1 in general (affine, not ratio)."""
        x = DesignPoint("x", area=2.0, perf=1.0, power=0.5)
        forward = ncf(x, baseline, FW, 0.5)
        backward = ncf(baseline, x, FW, 0.5)
        assert forward * backward != pytest.approx(1.0)


class TestNCFBandClass:
    def test_valid_band(self):
        band = NCFBand(nominal=1.0, low=0.9, high=1.1)
        assert band.width == pytest.approx(0.2)
        assert band.straddles_one()
        assert not band.below_one()
        assert not band.above_one()

    def test_below_one(self):
        band = NCFBand(nominal=0.8, low=0.7, high=0.9)
        assert band.below_one()
        assert not band.straddles_one()

    def test_above_one(self):
        band = NCFBand(nominal=1.2, low=1.1, high=1.3)
        assert band.above_one()

    def test_rejects_disordered(self):
        with pytest.raises(ValidationError):
            NCFBand(nominal=0.5, low=0.9, high=1.1)

    def test_as_dict(self):
        band = NCFBand(nominal=1.0, low=0.9, high=1.1)
        assert band.as_dict() == {"nominal": 1.0, "low": 0.9, "high": 1.1}


class TestNCFBandComputation:
    def test_band_edges_exact_for_affine(self, baseline):
        d = DesignPoint("x", area=2.0, perf=1.0, power=0.5)
        band = ncf_band(d, baseline, FT, EMBODIED_DOMINATED)
        # NCF(alpha) = alpha*2 + (1-alpha)*0.5 is increasing in alpha.
        assert band.low == pytest.approx(0.7 * 2.0 + 0.3 * 0.5)
        assert band.high == pytest.approx(0.9 * 2.0 + 0.1 * 0.5)
        assert band.nominal == pytest.approx(0.8 * 2.0 + 0.2 * 0.5)

    def test_zero_spread_band_degenerates(self, baseline):
        d = DesignPoint("x", area=2.0, perf=1.0, power=0.5)
        weight = E2OWeight("point", alpha=0.3)
        band = ncf_band(d, baseline, FT, weight)
        assert band.low == band.high == band.nominal

    def test_band_orientation_flips_with_slope(self, baseline):
        """When area improves and power worsens the NCF decreases with
        alpha, so the band must still come back ordered."""
        d = DesignPoint("x", area=0.5, perf=1.0, power=2.0)
        band = ncf_band(d, baseline, FT, EMBODIED_DOMINATED)
        assert band.low <= band.nominal <= band.high


class TestRelativeFootprint:
    def test_equal_designs_ratio_one(self, baseline, better_design):
        assert relative_footprint(
            better_design, better_design, baseline, FW, 0.5
        ) == pytest.approx(1.0)

    def test_matches_manual_chart_ratio(self, baseline):
        x = DesignPoint("x", area=16.0, perf=9.0, power=10.0)
        y = DesignPoint("y", area=32.0, perf=7.8, power=12.6)
        expected = ncf(x, baseline, FT, 0.2) / ncf(y, baseline, FT, 0.2)
        assert relative_footprint(x, y, baseline, FT, 0.2) == pytest.approx(expected)

    def test_differs_from_pairwise_ncf_in_general(self, baseline):
        """The paper's percentage convention (chart ratio) is not the
        pairwise NCF — guard the distinction."""
        x = DesignPoint("x", area=16.0, perf=9.0, power=10.0)
        y = DesignPoint("y", area=32.0, perf=7.8, power=12.6)
        chart = relative_footprint(x, y, baseline, FT, 0.2)
        pairwise = ncf(x, y, FT, 0.2)
        assert chart != pytest.approx(pairwise)


class TestAssess:
    def test_assessment_structure(self, better_design, baseline):
        a = assess(better_design, baseline, EMBODIED_DOMINATED)
        assert a.design == "better"
        assert a.baseline == "baseline"
        assert a.fixed_work.nominal == pytest.approx(
            ncf(better_design, baseline, FW, 0.8)
        )
        assert a.fixed_time.nominal == pytest.approx(
            ncf(better_design, baseline, FT, 0.8)
        )

    def test_as_dict_keys(self, better_design, baseline):
        payload = assess(better_design, baseline, EMBODIED_DOMINATED).as_dict()
        for key in ("ncf_fw", "ncf_ft", "ncf_fw_low", "ncf_ft_high", "alpha"):
            assert key in payload
