"""Unit tests for Pareto-frontier analysis."""

from __future__ import annotations

import pytest

from repro.core.design import DesignPoint
from repro.core.errors import ValidationError
from repro.core.pareto import ParetoPoint, pareto_designs, pareto_frontier
from repro.core.scenario import UseScenario


class TestDominance:
    def test_strict_dominance(self):
        a = ParetoPoint("a", perf=2.0, footprint=0.5)
        b = ParetoPoint("b", perf=1.0, footprint=1.0)
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_no_self_dominance(self):
        a = ParetoPoint("a", perf=1.0, footprint=1.0)
        assert not a.dominates(a)

    def test_dominance_with_one_axis_tied(self):
        a = ParetoPoint("a", perf=2.0, footprint=1.0)
        b = ParetoPoint("b", perf=1.0, footprint=1.0)
        assert a.dominates(b)

    def test_incomparable_points(self):
        fast_dirty = ParetoPoint("fd", perf=2.0, footprint=2.0)
        slow_clean = ParetoPoint("sc", perf=1.0, footprint=0.5)
        assert not fast_dirty.dominates(slow_clean)
        assert not slow_clean.dominates(fast_dirty)


class TestParetoFrontier:
    def test_single_point(self):
        p = ParetoPoint("only", perf=1.0, footprint=1.0)
        assert pareto_frontier([p]) == [p]

    def test_dominated_points_removed(self):
        points = [
            ParetoPoint("good", perf=2.0, footprint=0.5),
            ParetoPoint("bad", perf=1.0, footprint=1.0),
            ParetoPoint("ugly", perf=0.5, footprint=2.0),
        ]
        assert pareto_frontier(points) == [points[0]]

    def test_incomparable_points_all_kept_sorted_by_perf(self):
        points = [
            ParetoPoint("fast", perf=2.0, footprint=2.0),
            ParetoPoint("slow", perf=1.0, footprint=0.5),
            ParetoPoint("mid", perf=1.5, footprint=1.0),
        ]
        frontier = pareto_frontier(points)
        assert [p.name for p in frontier] == ["slow", "mid", "fast"]

    def test_duplicate_coordinates_kept_once(self):
        points = [
            ParetoPoint("a", perf=1.0, footprint=1.0),
            ParetoPoint("a-clone", perf=1.0, footprint=1.0),
        ]
        assert len(pareto_frontier(points)) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            pareto_frontier([])

    def test_frontier_is_monotone(self):
        """Along increasing perf, frontier footprint must increase."""
        points = [
            ParetoPoint(f"p{i}", perf=float(i), footprint=float(11 - i) ** 2 / 20 + i)
            for i in range(1, 11)
        ]
        frontier = pareto_frontier(points)
        footprints = [p.footprint for p in frontier]
        assert footprints == sorted(footprints)


class TestParetoDesigns:
    def test_fsc_dominates_figure7_frontier(self, baseline):
        """In the §5.6 chart under fixed-work/alpha=0.8, InO and FSC and
        OoO are all on the frontier except OoO is dominated by nothing
        on perf, so the frontier keeps all whose footprint rises with
        perf — FSC dominates InO? No: InO has lower footprint. Verify
        the actual frontier."""
        ino = DesignPoint("InO", area=1.0, perf=1.0, power=1.0)
        fsc = DesignPoint("FSC", area=1.01, perf=1.64, power=1.01)
        ooo = DesignPoint("OoO", area=1.39, perf=1.75, power=2.32)
        frontier = pareto_designs(
            [ino, fsc, ooo], ino, UseScenario.FIXED_WORK, alpha=0.8
        )
        names = [p.name for p in frontier]
        # FSC has *lower* NCF than InO under fixed-work (energy win), so
        # FSC dominates InO; OoO survives on raw performance.
        assert names == ["FSC", "OoO"]

    def test_requires_designs(self, baseline):
        with pytest.raises(ValidationError):
            pareto_designs([], baseline, UseScenario.FIXED_WORK, 0.5)

    def test_custom_label_key(self, baseline):
        d = DesignPoint("x", area=1.0, perf=1.0, power=1.0)
        frontier = pareto_designs(
            [d], baseline, UseScenario.FIXED_WORK, 0.5, key=lambda dd: dd.name.upper()
        )
        assert frontier[0].name == "X"
