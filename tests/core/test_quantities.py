"""Unit tests for repro.core.quantities."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ValidationError
from repro.core.quantities import (
    close,
    ensure_at_least,
    ensure_finite,
    ensure_fraction,
    ensure_in_range,
    ensure_int_at_least,
    ensure_monotone_increasing,
    ensure_non_negative,
    ensure_open_fraction,
    ensure_positive,
)


class TestEnsureFinite:
    def test_accepts_plain_float(self):
        assert ensure_finite(1.5, "x") == 1.5

    def test_accepts_int_and_coerces(self):
        value = ensure_finite(3, "x")
        assert value == 3.0
        assert isinstance(value, float)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValidationError, match="finite"):
            ensure_finite(bad, "x")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError, match="real number"):
            ensure_finite("abc", "x")

    def test_error_names_parameter(self):
        with pytest.raises(ValidationError, match="myparam"):
            ensure_finite(float("nan"), "myparam")


class TestEnsurePositive:
    def test_accepts_positive(self):
        assert ensure_positive(0.001, "x") == 0.001

    @pytest.mark.parametrize("bad", [0.0, -1.0, -0.0001])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValidationError, match="> 0"):
            ensure_positive(bad, "x")


class TestEnsureNonNegative:
    def test_accepts_zero(self):
        assert ensure_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match=">= 0"):
            ensure_non_negative(-1e-9, "x")


class TestEnsureFraction:
    @pytest.mark.parametrize("good", [0.0, 0.5, 1.0])
    def test_accepts_closed_interval(self, good):
        assert ensure_fraction(good, "x") == good

    @pytest.mark.parametrize("bad", [-0.01, 1.01])
    def test_rejects_outside(self, bad):
        with pytest.raises(ValidationError, match=r"\[0, 1\]"):
            ensure_fraction(bad, "x")


class TestEnsureOpenFraction:
    def test_accepts_interior(self):
        assert ensure_open_fraction(0.5, "x") == 0.5

    @pytest.mark.parametrize("bad", [0.0, 1.0])
    def test_rejects_endpoints(self, bad):
        with pytest.raises(ValidationError):
            ensure_open_fraction(bad, "x")


class TestEnsureInRange:
    def test_accepts_endpoint(self):
        assert ensure_in_range(2.0, 2.0, 4.0, "x") == 2.0

    def test_rejects_outside(self):
        with pytest.raises(ValidationError):
            ensure_in_range(4.5, 2.0, 4.0, "x")


class TestEnsureAtLeast:
    def test_accepts_equal(self):
        assert ensure_at_least(2.0, 2.0, "x") == 2.0

    def test_rejects_below(self):
        with pytest.raises(ValidationError):
            ensure_at_least(1.99, 2.0, "x")


class TestEnsureIntAtLeast:
    def test_accepts_int(self):
        assert ensure_int_at_least(4, 1, "x") == 4

    def test_accepts_integral_float(self):
        assert ensure_int_at_least(4.0, 1, "x") == 4

    def test_rejects_fractional_float(self):
        with pytest.raises(ValidationError, match="integer"):
            ensure_int_at_least(4.5, 1, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError, match="bool"):
            ensure_int_at_least(True, 0, "x")

    def test_rejects_below_minimum(self):
        with pytest.raises(ValidationError, match=">= 2"):
            ensure_int_at_least(1, 2, "x")

    def test_rejects_string(self):
        with pytest.raises(ValidationError):
            ensure_int_at_least("3", 1, "x")


class TestEnsureMonotoneIncreasing:
    def test_accepts_increasing(self):
        assert ensure_monotone_increasing([1, 2, 3], "x") == [1.0, 2.0, 3.0]

    def test_accepts_single_element(self):
        assert ensure_monotone_increasing([5], "x") == [5.0]

    def test_rejects_equal_neighbours(self):
        with pytest.raises(ValidationError, match="strictly increasing"):
            ensure_monotone_increasing([1, 1], "x")

    def test_rejects_decreasing(self):
        with pytest.raises(ValidationError):
            ensure_monotone_increasing([2, 1], "x")


class TestClose:
    def test_equal_values(self):
        assert close(1.0, 1.0)

    def test_within_tolerance(self):
        assert close(1.0, 1.0 + 1e-12)

    def test_outside_tolerance(self):
        assert not close(1.0, 1.001)

    def test_near_zero_uses_abs_tol(self):
        assert close(0.0, 1e-13)
        assert not close(0.0, 1e-6)

    def test_symmetry(self):
        assert close(2.0, 2.0 + 1e-12) == close(2.0 + 1e-12, 2.0)

    def test_matches_math_isclose_semantics(self):
        assert close(100.0, 100.0 * (1 + 1e-10)) == math.isclose(
            100.0, 100.0 * (1 + 1e-10), rel_tol=1e-9, abs_tol=1e-12
        )
