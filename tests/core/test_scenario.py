"""Unit tests for repro.core.scenario."""

from __future__ import annotations

import pytest

from repro.core.design import DesignPoint
from repro.core.errors import ValidationError
from repro.core.scenario import (
    BALANCED,
    EMBODIED_DOMINATED,
    OPERATIONAL_DOMINATED,
    STANDARD_WEIGHTS,
    E2OWeight,
    UseScenario,
)


class TestUseScenario:
    def test_proxies(self):
        assert UseScenario.FIXED_WORK.operational_proxy == "energy"
        assert UseScenario.FIXED_TIME.operational_proxy == "power"

    def test_operational_ratio_fixed_work_uses_energy(self, baseline):
        d = DesignPoint("x", area=1.0, perf=2.0, power=3.0)  # energy 1.5
        assert UseScenario.FIXED_WORK.operational_ratio(d, baseline) == pytest.approx(1.5)

    def test_operational_ratio_fixed_time_uses_power(self, baseline):
        d = DesignPoint("x", area=1.0, perf=2.0, power=3.0)
        assert UseScenario.FIXED_TIME.operational_ratio(d, baseline) == pytest.approx(3.0)

    def test_scenarios_differ_only_when_perf_differs(self, baseline):
        same_perf = DesignPoint("x", area=1.0, perf=1.0, power=0.7)
        assert UseScenario.FIXED_WORK.operational_ratio(
            same_perf, baseline
        ) == pytest.approx(
            UseScenario.FIXED_TIME.operational_ratio(same_perf, baseline)
        )


class TestE2OWeight:
    def test_paper_regimes(self):
        assert EMBODIED_DOMINATED.alpha == 0.8
        assert EMBODIED_DOMINATED.spread == 0.1
        assert OPERATIONAL_DOMINATED.alpha == 0.2
        assert OPERATIONAL_DOMINATED.spread == 0.1

    def test_standard_weights_tuple(self):
        assert STANDARD_WEIGHTS == (EMBODIED_DOMINATED, OPERATIONAL_DOMINATED)

    def test_band(self):
        assert EMBODIED_DOMINATED.band == (pytest.approx(0.7), pytest.approx(0.9))

    def test_band_clipped_to_unit_interval(self):
        w = E2OWeight("extreme", alpha=0.95, spread=0.2)
        assert w.low == pytest.approx(0.75)
        assert w.high == 1.0

    def test_rejects_alpha_outside_unit(self):
        with pytest.raises(ValidationError):
            E2OWeight("bad", alpha=1.2)

    def test_rejects_negative_spread(self):
        with pytest.raises(ValidationError):
            E2OWeight("bad", alpha=0.5, spread=-0.1)

    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            E2OWeight("", alpha=0.5)

    def test_alphas_default_three_samples(self):
        alphas = list(EMBODIED_DOMINATED.alphas())
        assert alphas == [pytest.approx(0.7), pytest.approx(0.8), pytest.approx(0.9)]

    def test_alphas_single_sample_is_nominal(self):
        assert list(EMBODIED_DOMINATED.alphas(1)) == [0.8]

    def test_alphas_zero_spread_yields_nominal_once(self):
        assert list(BALANCED.alphas(5)) == [0.5]

    def test_alphas_rejects_zero_samples(self):
        with pytest.raises(ValidationError):
            list(EMBODIED_DOMINATED.alphas(0))

    def test_alphas_includes_band_edges(self):
        alphas = list(OPERATIONAL_DOMINATED.alphas(5))
        assert alphas[0] == pytest.approx(0.1)
        assert alphas[-1] == pytest.approx(0.3)
        assert len(alphas) == 5

    def test_with_alpha(self):
        w = EMBODIED_DOMINATED.with_alpha(0.75)
        assert w.alpha == 0.75
        assert w.spread == EMBODIED_DOMINATED.spread
        assert w.name == EMBODIED_DOMINATED.name

    def test_str_includes_spread(self):
        assert "±" in str(EMBODIED_DOMINATED) or "0.1" in str(EMBODIED_DOMINATED)
