"""Unit tests for interval arithmetic and robust classification."""

from __future__ import annotations

import pytest

from repro.core.classify import Sustainability
from repro.core.design import DesignPoint
from repro.core.errors import ValidationError
from repro.core.scenario import (
    EMBODIED_DOMINATED,
    OPERATIONAL_DOMINATED,
    E2OWeight,
)
from repro.core.uncertainty import Interval, robust_classification


class TestIntervalConstruction:
    def test_basic(self):
        iv = Interval(1.0, 2.0)
        assert iv.low == 1.0
        assert iv.high == 2.0
        assert iv.width == 1.0
        assert iv.midpoint == 1.5

    def test_point(self):
        assert Interval.point(3.0).width == 0.0

    def test_from_center(self):
        iv = Interval.from_center(0.8, 0.1)
        assert iv.low == pytest.approx(0.7)
        assert iv.high == pytest.approx(0.9)

    def test_from_center_rejects_negative_spread(self):
        with pytest.raises(ValidationError):
            Interval.from_center(0.5, -0.1)

    def test_rejects_disordered(self):
        with pytest.raises(ValidationError):
            Interval(2.0, 1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            Interval(float("nan"), 1.0)


class TestIntervalPredicates:
    def test_contains(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains(1.0) and iv.contains(2.0) and iv.contains(1.5)
        assert not iv.contains(0.99)

    def test_entirely_below_above(self):
        iv = Interval(0.5, 0.9)
        assert iv.entirely_below(1.0)
        assert not iv.entirely_above(1.0)
        assert Interval(1.1, 1.2).entirely_above(1.0)


class TestIntervalArithmetic:
    def test_addition(self):
        result = Interval(1, 2) + Interval(10, 20)
        assert (result.low, result.high) == (11, 22)

    def test_scalar_addition_commutes(self):
        assert (Interval(1, 2) + 5).low == (5 + Interval(1, 2)).low == 6

    def test_negation(self):
        result = -Interval(1, 2)
        assert (result.low, result.high) == (-2, -1)

    def test_subtraction(self):
        result = Interval(5, 6) - Interval(1, 2)
        assert (result.low, result.high) == (3, 5)

    def test_rsub(self):
        result = 10 - Interval(1, 2)
        assert (result.low, result.high) == (8, 9)

    def test_multiplication_mixed_signs(self):
        result = Interval(-1, 2) * Interval(-3, 4)
        # candidates: 3, -4, -6, 8
        assert (result.low, result.high) == (-6, 8)

    def test_scalar_multiplication(self):
        result = 2 * Interval(1, 3)
        assert (result.low, result.high) == (2, 6)

    def test_division(self):
        result = Interval(1, 2) / Interval(2, 4)
        assert result.low == pytest.approx(0.25)
        assert result.high == pytest.approx(1.0)

    def test_division_by_zero_interval_rejected(self):
        with pytest.raises(ValidationError, match="zero"):
            Interval(1, 2) / Interval(-1, 1)

    def test_rtruediv(self):
        result = 1 / Interval(2, 4)
        assert result.low == pytest.approx(0.25)
        assert result.high == pytest.approx(0.5)

    def test_ncf_band_via_intervals_is_conservative(self):
        """Interval NCF: alpha in [0.7,0.9], area 2, power 0.5. Because
        alpha appears twice, naive interval evaluation over-approximates
        (the dependency problem) — the result must *contain* the exact
        affine band but may be wider. ncf_band computes the exact band."""
        alpha = Interval(0.7, 0.9)
        ncf_interval = alpha * 2.0 + (1 - alpha) * 0.5
        exact_low = 0.7 * 2 + 0.3 * 0.5
        exact_high = 0.9 * 2 + 0.1 * 0.5
        assert ncf_interval.low <= exact_low
        assert ncf_interval.high >= exact_high
        # Rewriting to use alpha once gives the exact band:
        tight = 0.5 + alpha * (2.0 - 0.5)
        assert tight.low == pytest.approx(exact_low)
        assert tight.high == pytest.approx(exact_high)


class TestRobustClassification:
    def test_unanimous_strong(self, better_design, baseline):
        conclusion = robust_classification(
            better_design, baseline, [EMBODIED_DOMINATED, OPERATIONAL_DOMINATED]
        )
        assert conclusion.unanimous
        assert conclusion.consensus is Sustainability.STRONG
        assert len(conclusion.verdicts) == 6  # two bands x three samples

    def test_disagreement_detected(self, baseline):
        """A design whose verdict flips between the two alpha regimes."""
        d = DesignPoint("accel", area=1.5, perf=1.0, power=0.3)
        conclusion = robust_classification(
            d, baseline, [EMBODIED_DOMINATED, OPERATIONAL_DOMINATED]
        )
        assert not conclusion.unanimous
        assert conclusion.consensus is None
        assert Sustainability.STRONG in conclusion.categories
        assert Sustainability.LESS in conclusion.categories

    def test_single_band_single_sample(self, worse_design, baseline):
        conclusion = robust_classification(
            worse_design, baseline, [E2OWeight("mid", 0.5)], samples_per_band=1
        )
        assert conclusion.unanimous
        assert conclusion.consensus is Sustainability.LESS
        assert len(conclusion.verdicts) == 1

    def test_requires_weights(self, better_design, baseline):
        with pytest.raises(ValidationError):
            robust_classification(better_design, baseline, [])

    def test_categories_preserve_first_seen_order(self, baseline):
        d = DesignPoint("accel", area=1.5, perf=1.0, power=0.3)
        conclusion = robust_classification(
            d, baseline, [EMBODIED_DOMINATED, OPERATIONAL_DOMINATED]
        )
        # Embodied band (alpha 0.7-0.9) is evaluated first -> LESS first.
        assert conclusion.categories[0] is Sustainability.LESS
