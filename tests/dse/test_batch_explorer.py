"""Tests for the vectorized batch-evaluation engine.

The headline contract: ``BatchExplorer.explore`` is byte-identical to
``Explorer.explore`` — same ordering, same invalid-corner skips, exact
(``==``) float agreement — under every engine configuration (chunking,
memoized cache, process-pool workers).
"""

from __future__ import annotations

import pytest

from repro.amdahl.asymmetric import AsymmetricMulticore
from repro.amdahl.symmetric import SymmetricMulticore
from repro.core.classify import Sustainability
from repro.core.design import DesignPoint
from repro.core.errors import ConfigurationError, DomainError, ValidationError
from repro.core.scenario import OPERATIONAL_DOMINATED
from repro.dse.batch import BatchExplorer, FactoryCache, params_key
from repro.dse.explorer import Explorer
from repro.dse.grid import ParameterGrid


def multicore_factory(params):
    """Module-level (picklable) factory for the workers tests."""
    return SymmetricMulticore(
        cores=params["cores"], parallel_fraction=params["f"]
    ).design_point()


def asymmetric_factory(params):
    """Raises DomainError for n < 8 (big core would not fit)."""
    return AsymmetricMulticore(
        total_bces=params["n"], big_core_bces=4, parallel_fraction=0.8
    ).design_point()


@pytest.fixture
def grid() -> ParameterGrid:
    return ParameterGrid({"cores": [1, 2, 4, 8, 16], "f": [0.5, 0.9, 0.95]})


@pytest.fixture
def scalar_results(baseline, grid):
    explorer = Explorer(
        factory=multicore_factory, baseline=baseline, weight=OPERATIONAL_DOMINATED
    )
    return explorer.explore(grid)


def batch_explorer(baseline, **kwargs) -> BatchExplorer:
    return BatchExplorer(
        factory=multicore_factory,
        baseline=baseline,
        weight=OPERATIONAL_DOMINATED,
        **kwargs,
    )


class TestByteIdenticalParity:
    def test_explore_matches_scalar_engine(self, baseline, grid, scalar_results):
        results = batch_explorer(baseline).explore(grid)
        assert results == scalar_results

    def test_floats_are_exact(self, baseline, grid, scalar_results):
        for ours, theirs in zip(batch_explorer(baseline).explore(grid), scalar_results):
            assert ours.perf == theirs.perf
            assert ours.ncf_fixed_work == theirs.ncf_fixed_work
            assert ours.ncf_fixed_time == theirs.ncf_fixed_time
            assert ours.category is theirs.category

    def test_ordering_is_grid_order(self, baseline, grid):
        results = batch_explorer(baseline).explore(grid)
        assert [r.params for r in results] == list(grid)

    def test_domain_errors_skipped_like_scalar(self, baseline):
        grid = ParameterGrid({"n": [2, 4, 8, 16]})  # 2 and 4 are invalid
        explorer = BatchExplorer(
            factory=asymmetric_factory, baseline=baseline, weight=OPERATIONAL_DOMINATED
        )
        results = explorer.explore(grid)
        assert [r.params["n"] for r in results] == [8, 16]

    def test_all_invalid_raises(self, baseline):
        explorer = BatchExplorer(
            factory=asymmetric_factory, baseline=baseline, weight=OPERATIONAL_DOMINATED
        )
        with pytest.raises(ConfigurationError):
            explorer.explore(ParameterGrid({"n": [2, 4]}))

    def test_count_categories_matches_scalar(self, baseline, grid, scalar_results):
        counts = batch_explorer(baseline).count_categories(grid)
        assert counts == Explorer.count_categories(scalar_results)

    def test_count_categories_all_invalid_raises(self, baseline):
        explorer = BatchExplorer(
            factory=asymmetric_factory, baseline=baseline, weight=OPERATIONAL_DOMINATED
        )
        with pytest.raises(ConfigurationError):
            explorer.count_categories(ParameterGrid({"n": [2, 4]}))


class TestChunking:
    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 1000])
    def test_chunk_size_never_changes_results(
        self, baseline, grid, scalar_results, chunk_size
    ):
        results = batch_explorer(baseline, chunk_size=chunk_size).explore(grid)
        assert results == scalar_results

    def test_rejects_bad_chunk_size(self, baseline):
        with pytest.raises(ValidationError):
            batch_explorer(baseline, chunk_size=0)

    def test_rejects_negative_workers(self, baseline):
        with pytest.raises(ValidationError):
            batch_explorer(baseline, workers=-1)


class CountingFactory:
    def __init__(self, factory):
        self.factory = factory
        self.calls = 0

    def __call__(self, params):
        self.calls += 1
        return self.factory(params)


class TestFactoryCache:
    def test_resweep_never_reevaluates(self, baseline, grid):
        counting = CountingFactory(multicore_factory)
        explorer = BatchExplorer(
            factory=counting, baseline=baseline, weight=OPERATIONAL_DOMINATED
        )
        first = explorer.explore(grid)
        assert counting.calls == len(grid)
        second = explorer.explore(grid)
        assert counting.calls == len(grid)  # all hits, zero new calls
        assert first == second
        assert explorer.cache.hits == len(grid)

    def test_subgrid_resweep_hits_cache(self, baseline, grid):
        counting = CountingFactory(multicore_factory)
        explorer = BatchExplorer(
            factory=counting, baseline=baseline, weight=OPERATIONAL_DOMINATED
        )
        explorer.explore(grid)
        explorer.explore(grid.subgrid(cores=8))
        assert counting.calls == len(grid)

    def test_count_categories_shares_cache_with_explore(self, baseline, grid):
        counting = CountingFactory(multicore_factory)
        explorer = BatchExplorer(
            factory=counting, baseline=baseline, weight=OPERATIONAL_DOMINATED
        )
        explorer.count_categories(grid)
        explorer.explore(grid)
        assert counting.calls == len(grid)

    def test_domain_errors_memoized(self, baseline):
        counting = CountingFactory(asymmetric_factory)
        grid = ParameterGrid({"n": [2, 4, 8, 16]})
        explorer = BatchExplorer(
            factory=counting, baseline=baseline, weight=OPERATIONAL_DOMINATED
        )
        explorer.explore(grid)
        explorer.explore(grid)
        assert counting.calls == len(grid)  # invalid corners cached too

    def test_cache_shareable_across_explorers(self, baseline, grid):
        counting = CountingFactory(multicore_factory)
        cache = FactoryCache(counting)
        for _ in range(2):
            BatchExplorer(
                factory=counting,
                baseline=baseline,
                weight=OPERATIONAL_DOMINATED,
                cache=cache,
            ).explore(grid)
        assert counting.calls == len(grid)

    def test_callable_wrapper_raises_memoized_domain_error(self):
        cache = FactoryCache(asymmetric_factory)
        with pytest.raises(DomainError):
            cache({"n": 2})
        with pytest.raises(DomainError):
            cache({"n": 2})
        assert cache.misses == 1 and cache.hits == 1

    def test_clear_forces_reevaluation(self, baseline, grid):
        counting = CountingFactory(multicore_factory)
        explorer = BatchExplorer(
            factory=counting, baseline=baseline, weight=OPERATIONAL_DOMINATED
        )
        explorer.explore(grid)
        explorer.cache.clear()
        assert len(explorer.cache) == 0
        explorer.explore(grid)
        assert counting.calls == 2 * len(grid)

    def test_params_key_ignores_insertion_order(self):
        assert params_key({"a": 1, "b": 2}) == params_key({"b": 2, "a": 1})


class TestWorkers:
    def test_pool_results_identical_to_serial(self, baseline, grid, scalar_results):
        results = batch_explorer(baseline, workers=2, chunk_size=4).explore(grid)
        assert results == scalar_results

    def test_pool_skips_domain_errors(self, baseline):
        grid = ParameterGrid({"n": [2, 4, 8, 16]})
        explorer = BatchExplorer(
            factory=asymmetric_factory,
            baseline=baseline,
            weight=OPERATIONAL_DOMINATED,
            workers=2,
        )
        assert [r.params["n"] for r in explorer.explore(grid)] == [8, 16]

    def test_pool_fills_cache_for_serial_resweep(self, baseline, grid):
        explorer = batch_explorer(baseline, workers=2)
        explorer.explore(grid)
        assert explorer.cache.misses == len(grid)
        explorer.explore(grid)
        assert explorer.cache.hits == len(grid)


class TestBatchSweepResult:
    def test_len_and_categories(self, baseline, grid):
        sweep = batch_explorer(baseline).explore_arrays(grid)
        assert len(sweep) == len(grid)
        assert len(sweep.categories) == len(grid)
        assert all(isinstance(c, Sustainability) for c in sweep.categories)

    def test_category_counts_drops_empty_by_default(self, baseline, grid):
        sweep = batch_explorer(baseline).explore_arrays(grid)
        counts = sweep.category_counts()
        assert all(n > 0 for n in counts.values())
        full = sweep.category_counts(include_empty=True)
        assert set(full) == set(Sustainability)
        assert sum(full.values()) == len(grid)

    def test_results_roundtrip(self, baseline, grid, scalar_results):
        sweep = batch_explorer(baseline).explore_arrays(grid)
        assert sweep.results() == scalar_results

    def test_results_interoperate_with_scalar_pareto(self, baseline, grid):
        scalar = Explorer(
            factory=multicore_factory, baseline=baseline, weight=OPERATIONAL_DOMINATED
        )
        sweep = batch_explorer(baseline).explore_arrays(grid)
        assert scalar.pareto(sweep.results()) == scalar.pareto(scalar.explore(grid))
