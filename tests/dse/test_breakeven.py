"""Unit tests for the generic break-even bisection."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import DomainError
from repro.dse.breakeven import bisect_crossing, crossing_or_none


class TestBisect:
    def test_linear_crossing(self):
        assert bisect_crossing(lambda x: 2 * x, 0.0, 1.0, target=1.0) == (
            pytest.approx(0.5)
        )

    def test_nonlinear_crossing(self):
        root = bisect_crossing(lambda x: x**3, 0.0, 2.0, target=2.0)
        assert root == pytest.approx(2.0 ** (1 / 3))

    def test_decreasing_function(self):
        root = bisect_crossing(lambda x: math.exp(-x), 0.0, 10.0, target=0.5)
        assert root == pytest.approx(math.log(2))

    def test_endpoint_hits(self):
        assert bisect_crossing(lambda x: x, 1.0, 2.0, target=1.0) == 1.0
        assert bisect_crossing(lambda x: x, 1.0, 2.0, target=2.0) == 2.0

    def test_no_crossing_raises(self):
        with pytest.raises(DomainError, match="no crossing"):
            bisect_crossing(lambda x: x + 10, 0.0, 1.0, target=1.0)

    def test_disordered_bracket_raises(self):
        with pytest.raises(DomainError):
            bisect_crossing(lambda x: x, 2.0, 1.0)

    def test_tolerance_respected(self):
        root = bisect_crossing(lambda x: x, 0.0, 1.0, target=0.3, tol=1e-12)
        assert abs(root - 0.3) < 1e-10


class TestCrossingOrNone:
    def test_returns_crossing(self):
        assert crossing_or_none(lambda x: x, 0.0, 1.0, target=0.25) == (
            pytest.approx(0.25)
        )

    def test_returns_none_without_crossing(self):
        assert crossing_or_none(lambda x: x + 5, 0.0, 1.0, target=1.0) is None
