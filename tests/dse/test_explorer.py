"""Unit tests for the design-space explorer."""

from __future__ import annotations

import pytest

from repro.amdahl.asymmetric import AsymmetricMulticore
from repro.amdahl.symmetric import SymmetricMulticore
from repro.core.classify import Sustainability
from repro.core.design import DesignPoint
from repro.core.errors import ConfigurationError
from repro.core.scenario import OPERATIONAL_DOMINATED, UseScenario
from repro.dse.explorer import Explorer
from repro.dse.grid import ParameterGrid


def multicore_factory(params):
    return SymmetricMulticore(
        cores=params["cores"], parallel_fraction=params["f"]
    ).design_point()


@pytest.fixture
def explorer(baseline) -> Explorer:
    return Explorer(
        factory=multicore_factory, baseline=baseline, weight=OPERATIONAL_DOMINATED
    )


@pytest.fixture
def grid() -> ParameterGrid:
    return ParameterGrid({"cores": [1, 2, 4, 8], "f": [0.5, 0.9]})


class TestExplore:
    def test_one_result_per_grid_point(self, explorer, grid):
        results = explorer.explore(grid)
        assert len(results) == len(grid)

    def test_result_values_match_direct_computation(self, explorer, grid, baseline):
        from repro.core.ncf import ncf

        result = next(
            r for r in explorer.explore(grid) if r.params == {"cores": 8, "f": 0.9}
        )
        design = multicore_factory({"cores": 8, "f": 0.9})
        assert result.perf == pytest.approx(design.perf)
        assert result.ncf_fixed_work == pytest.approx(
            ncf(design, baseline, UseScenario.FIXED_WORK, 0.2)
        )

    def test_domain_errors_skipped(self, baseline):
        """An asymmetric factory hits invalid corners (M >= N); the
        explorer must skip them, not crash."""

        def factory(params):
            return AsymmetricMulticore(
                total_bces=params["n"], big_core_bces=4, parallel_fraction=0.8
            ).design_point()

        explorer = Explorer(factory=factory, baseline=baseline, weight=OPERATIONAL_DOMINATED)
        grid = ParameterGrid({"n": [2, 4, 8, 16]})  # 2 and 4 are invalid
        results = explorer.explore(grid)
        assert [r.params["n"] for r in results] == [8, 16]

    def test_all_invalid_raises(self, baseline):
        def factory(params):
            raise_from = AsymmetricMulticore(
                total_bces=2, big_core_bces=4, parallel_fraction=0.5
            )
            return raise_from.design_point()  # pragma: no cover

        explorer = Explorer(factory=factory, baseline=baseline, weight=OPERATIONAL_DOMINATED)
        with pytest.raises(ConfigurationError):
            explorer.explore(ParameterGrid({"n": [1]}))

    def test_as_dict_merges_params_and_metrics(self, explorer, grid):
        row = explorer.explore(grid)[0].as_dict()
        assert "cores" in row and "ncf_fw" in row and "category" in row

    def test_category_classified_once_per_result(self, explorer, grid, monkeypatch):
        """``category`` is a cached property: repeated reads (histogram,
        ``as_dict``, Pareto labels) must not re-run the classifier."""
        import repro.dse.explorer as explorer_module

        calls = 0
        real = explorer_module.classify_values

        def counting(*args, **kwargs):
            nonlocal calls
            calls += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(explorer_module, "classify_values", counting)
        result = explorer.explore(grid)[0]
        first = result.category
        assert result.category is first
        result.as_dict()
        assert calls == 1


class TestParetoAndCounts:
    def test_pareto_subset(self, explorer, grid):
        results = explorer.explore(grid)
        frontier = explorer.pareto(results)
        assert 0 < len(frontier) <= len(results)
        perfs = [p.perf for p in frontier]
        assert perfs == sorted(perfs)

    def test_category_histogram_sums(self, explorer, grid):
        results = explorer.explore(grid)
        counts = Explorer.count_categories(results)
        assert sum(counts.values()) == len(results)

    def test_multicore_vs_equal_area_single_core_is_strong(self, baseline):
        """Figure 3's message (Finding #1): the N-core multicore is
        strongly sustainable against the *equal-area* single core, for
        every N > 1 and f. (Against the tiny 1-BCE baseline it is of
        course less sustainable — it is simply a bigger chip.)"""
        from repro.amdahl.pollack import big_core_design
        from repro.core.classify import classify

        for n in (2, 4, 8):
            for f in (0.5, 0.9):
                mc = SymmetricMulticore(cores=n, parallel_fraction=f).design_point()
                big = big_core_design(n)
                assert classify(mc, big, 0.2).category is Sustainability.STRONG

    def test_sweep_vs_one_bce_baseline_counts(self, explorer, grid):
        counts = Explorer.count_categories(explorer.explore(grid))
        assert counts[Sustainability.NEUTRAL] == 2  # the two N=1 points
        assert counts[Sustainability.LESS] == 6  # bigger chips, more power
