"""Unit tests for parameter grids."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.dse.grid import ParameterGrid, geometric_range, linear_range


class TestGeometricRange:
    def test_paper_bce_ladder(self):
        assert geometric_range(1, 32) == [1, 2, 4, 8, 16, 32]

    def test_custom_factor(self):
        assert geometric_range(1, 100, factor=10) == [1, 10, 100]

    def test_stop_not_on_grid(self):
        assert geometric_range(1, 30) == [1, 2, 4, 8, 16]

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            geometric_range(4, 2)

    def test_rejects_factor_one(self):
        with pytest.raises(ConfigurationError):
            geometric_range(1, 8, factor=1.0)

    def test_no_float_drift_on_long_ladders(self):
        """Rungs are ``start * factor**i``, not a running product, so a
        100-rung ladder lands exactly on every power of the factor."""
        rungs = geometric_range(1.0, 1.1**100, factor=1.1)
        assert len(rungs) == 101
        assert rungs == [1.1**i for i in range(101)]

    def test_stop_rung_included_despite_rounding(self):
        # 0.1 * 1.2**20 is inexact in binary; the top rung must not be
        # dropped by a strict ``value > stop`` comparison.
        rungs = geometric_range(0.1, 0.1 * 1.2**20, factor=1.2)
        assert len(rungs) == 21
        assert rungs[-1] == 0.1 * 1.2**20


class TestLinearRange:
    def test_inclusive_endpoints(self):
        values = linear_range(0.0, 1.0, 5)
        assert values[0] == 0.0
        assert values[-1] == 1.0
        assert len(values) == 5

    def test_single_step(self):
        assert linear_range(3.0, 9.0, 1) == [3.0]

    def test_rejects_zero_steps(self):
        with pytest.raises(ConfigurationError):
            linear_range(0, 1, 0)


class TestParameterGrid:
    def test_cartesian_product_size(self):
        grid = ParameterGrid({"a": [1, 2, 3], "b": ["x", "y"]})
        assert len(grid) == 6

    def test_iteration_yields_dicts(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x"]})
        combos = list(grid)
        assert {"a": 1, "b": "x"} in combos
        assert {"a": 2, "b": "x"} in combos
        assert len(combos) == 2

    def test_row_major_order(self):
        grid = ParameterGrid({"a": [1, 2], "b": [10, 20]})
        assert list(grid)[:2] == [{"a": 1, "b": 10}, {"a": 1, "b": 20}]

    def test_requires_axes(self):
        with pytest.raises(ConfigurationError):
            ParameterGrid({})

    def test_rejects_empty_axis(self):
        with pytest.raises(ConfigurationError):
            ParameterGrid({"a": []})

    def test_subgrid_pins_axis(self):
        grid = ParameterGrid({"a": [1, 2], "b": [10, 20]})
        sub = grid.subgrid(a=2)
        assert len(sub) == 2
        assert all(combo["a"] == 2 for combo in sub)

    def test_subgrid_unknown_axis(self):
        grid = ParameterGrid({"a": [1]})
        with pytest.raises(ConfigurationError, match="unknown axis"):
            grid.subgrid(c=1)

    def test_subgrid_unknown_value(self):
        grid = ParameterGrid({"a": [1, 2]})
        with pytest.raises(ConfigurationError, match="not in axis"):
            grid.subgrid(a=3)
