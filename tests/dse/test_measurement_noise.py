"""Unit tests for measurement-uncertainty Monte Carlo (§2)."""

from __future__ import annotations

import pytest

from repro.core.classify import Sustainability
from repro.core.design import DesignPoint
from repro.core.errors import ValidationError
from repro.dse.montecarlo import sample_measurement_noise


class TestMeasurementNoise:
    def test_probabilities_sum_to_one(self, better_design, baseline):
        probs = sample_measurement_noise(
            better_design, baseline, 0.5, samples=500
        )
        assert probs.strong + probs.weak + probs.less + probs.neutral == (
            pytest.approx(1.0)
        )

    def test_zero_noise_is_deterministic(self, better_design, baseline):
        probs = sample_measurement_noise(
            better_design, baseline, 0.5, relative_sigma=0.0, samples=200
        )
        assert probs.strong == 1.0

    def test_robust_margin_survives_noise(self, baseline):
        """A design 40 % better on every axis survives 5 % measurement
        noise essentially always."""
        solid = DesignPoint("solid", area=0.6, perf=1.0, power=0.6)
        probs = sample_measurement_noise(
            solid, baseline, 0.5, relative_sigma=0.05, samples=4000, seed=11
        )
        assert probs.strong > 0.99

    def test_marginal_design_flips_under_noise(self, baseline):
        """A design 2 % better on every axis flips frequently at 10 %
        measurement noise — quantifying why the paper refuses to trust
        small margins."""
        marginal = DesignPoint("marginal", area=0.98, perf=1.0, power=0.98)
        probs = sample_measurement_noise(
            marginal, baseline, 0.5, relative_sigma=0.10, samples=4000, seed=11
        )
        assert probs.strong < 0.9
        assert probs.most_likely in (Sustainability.STRONG, Sustainability.WEAK, Sustainability.LESS)

    def test_more_noise_less_certainty(self, baseline):
        solid = DesignPoint("solid", area=0.8, perf=1.0, power=0.8)
        tight = sample_measurement_noise(
            solid, baseline, 0.5, relative_sigma=0.02, samples=3000, seed=5
        )
        loose = sample_measurement_noise(
            solid, baseline, 0.5, relative_sigma=0.5, samples=3000, seed=5
        )
        assert loose.strong < tight.strong

    def test_seed_reproducible(self, better_design, baseline):
        a = sample_measurement_noise(better_design, baseline, 0.5, samples=100, seed=2)
        b = sample_measurement_noise(better_design, baseline, 0.5, samples=100, seed=2)
        assert a == b

    def test_rejects_bad_inputs(self, better_design, baseline):
        with pytest.raises(ValidationError):
            sample_measurement_noise(better_design, baseline, 0.5, samples=0)
        with pytest.raises(ValidationError):
            sample_measurement_noise(
                better_design, baseline, 0.5, relative_sigma=-0.1
            )
        with pytest.raises(ValidationError):
            sample_measurement_noise(
                better_design, baseline, 0.5, samples=10, workers=-1
            )

    def test_workers_match_serial(self, baseline):
        # Marginal design: any classification drift between the serial
        # and sharded paths would shift the probabilities.
        d = DesignPoint("marginal", area=1.02, perf=1.0, power=0.99)
        serial = sample_measurement_noise(d, baseline, 0.5, samples=2001, seed=4)
        parallel = sample_measurement_noise(
            d, baseline, 0.5, samples=2001, seed=4, workers=2
        )
        assert parallel == serial

    def test_single_sample_with_workers(self, better_design, baseline):
        serial = sample_measurement_noise(
            better_design, baseline, 0.5, samples=1, seed=6
        )
        parallel = sample_measurement_noise(
            better_design, baseline, 0.5, samples=1, seed=6, workers=2
        )
        assert parallel == serial
