"""Unit tests for Monte-Carlo verdict sampling."""

from __future__ import annotations

import pytest

from repro.core.classify import Sustainability
from repro.core.design import DesignPoint
from repro.core.errors import ValidationError
from repro.core.scenario import EMBODIED_DOMINATED, E2OWeight
from repro.dse.montecarlo import sample_verdicts


class TestSampleVerdicts:
    def test_probabilities_sum_to_one(self, better_design, baseline):
        probs = sample_verdicts(better_design, baseline, EMBODIED_DOMINATED, samples=500)
        total = probs.strong + probs.weak + probs.less + probs.neutral
        assert total == pytest.approx(1.0)

    def test_robust_design_always_strong(self, better_design, baseline):
        probs = sample_verdicts(better_design, baseline, EMBODIED_DOMINATED, samples=500)
        assert probs.strong == 1.0
        assert probs.most_likely is Sustainability.STRONG

    def test_verdict_flip_inside_band_detected(self, baseline):
        """Design whose NCF crosses 1 inside alpha in [0.7, 0.9]:
        area 1.1, power/energy 0.6 -> boundary at alpha = 0.8."""
        d = DesignPoint("edge", area=1.1, perf=1.0, power=0.6)
        probs = sample_verdicts(d, baseline, EMBODIED_DOMINATED, samples=4000, seed=7)
        assert 0.3 < probs.strong < 0.7
        assert probs.strong + probs.less == pytest.approx(1.0)

    def test_deterministic_given_seed(self, baseline):
        d = DesignPoint("edge", area=1.1, perf=1.0, power=0.6)
        a = sample_verdicts(d, baseline, EMBODIED_DOMINATED, samples=100, seed=3)
        b = sample_verdicts(d, baseline, EMBODIED_DOMINATED, samples=100, seed=3)
        assert a == b

    def test_zero_spread_band_degenerates_to_point(self, baseline, worse_design):
        weight = E2OWeight("point", alpha=0.5)
        probs = sample_verdicts(worse_design, baseline, weight, samples=50)
        assert probs.less == 1.0

    def test_rejects_zero_samples(self, better_design, baseline):
        with pytest.raises(ValidationError):
            sample_verdicts(better_design, baseline, EMBODIED_DOMINATED, samples=0)

    def test_sample_count_recorded(self, better_design, baseline):
        probs = sample_verdicts(better_design, baseline, EMBODIED_DOMINATED, samples=123)
        assert probs.samples == 123


class TestParallelSampling:
    """workers > 0 shards the draw over a pool; shard generators are
    positioned on the single logical stream with advance(), so the
    probabilities are byte-identical to the serial run."""

    def test_workers_match_serial(self, baseline):
        d = DesignPoint("edge", area=1.1, perf=1.0, power=0.6)
        serial = sample_verdicts(
            d, baseline, EMBODIED_DOMINATED, samples=2001, seed=7
        )
        parallel = sample_verdicts(
            d, baseline, EMBODIED_DOMINATED, samples=2001, seed=7, workers=2
        )
        assert parallel == serial

    def test_workers_match_serial_degenerate_band(self, baseline, worse_design):
        # hi == lo consumes no generator states; the shards must not
        # advance past a stream that was never drawn from.
        weight = E2OWeight("point", alpha=0.5)
        serial = sample_verdicts(worse_design, baseline, weight, samples=55, seed=3)
        parallel = sample_verdicts(
            worse_design, baseline, weight, samples=55, seed=3, workers=2
        )
        assert parallel == serial

    def test_single_sample_with_workers(self, better_design, baseline):
        serial = sample_verdicts(
            better_design, baseline, EMBODIED_DOMINATED, samples=1, seed=9
        )
        parallel = sample_verdicts(
            better_design, baseline, EMBODIED_DOMINATED, samples=1, seed=9, workers=2
        )
        assert parallel == serial

    def test_rejects_negative_workers(self, better_design, baseline):
        with pytest.raises(ValidationError):
            sample_verdicts(
                better_design, baseline, EMBODIED_DOMINATED, samples=10, workers=-1
            )
