"""Instrumentation must never change results: enabled or disabled,
the engine's numbers stay byte-identical to the uninstrumented path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design import DesignPoint
from repro.core.scenario import EMBODIED_DOMINATED
from repro.dse.batch import BatchExplorer, FactoryCache
from repro.dse.explorer import Explorer
from repro.dse.grid import ParameterGrid, linear_range
from repro.dse.montecarlo import sample_measurement_noise, sample_verdicts
from repro.obs import metrics, trace


@pytest.fixture(autouse=True)
def clean_obs():
    trace.reset()
    metrics.reset()
    yield
    trace.reset()
    metrics.reset()


def factory(params):
    from repro.amdahl.symmetric import SymmetricMulticore

    return SymmetricMulticore(
        cores=params["cores"], parallel_fraction=params["f"]
    ).design_point()


@pytest.fixture
def baseline():
    return DesignPoint.baseline("1-BCE single core")


@pytest.fixture
def grid():
    return ParameterGrid({"cores": [1, 2, 4, 8], "f": linear_range(0.5, 0.99, 5)})


def _explorer(baseline) -> BatchExplorer:
    return BatchExplorer(
        factory=factory, baseline=baseline, weight=EMBODIED_DOMINATED, chunk_size=7
    )


class TestBatchParity:
    def test_traced_sweep_matches_untraced_bit_exact(self, baseline, grid):
        plain = _explorer(baseline).explore_arrays(grid)
        trace.enable()
        metrics.enable()
        traced = _explorer(baseline).explore_arrays(grid)
        assert traced.params == plain.params
        assert np.array_equal(traced.perf, plain.perf)
        assert np.array_equal(traced.ncf_fixed_work, plain.ncf_fixed_work)
        assert np.array_equal(traced.ncf_fixed_time, plain.ncf_fixed_time)
        assert np.array_equal(traced.codes, plain.codes)

    def test_traced_results_match_scalar_explorer(self, baseline, grid):
        trace.enable()
        scalar = Explorer(
            factory=factory, baseline=baseline, weight=EMBODIED_DOMINATED
        ).explore(grid)
        batch = _explorer(baseline).explore(grid)
        assert batch == scalar

    def test_traced_count_categories_matches(self, baseline, grid):
        plain = _explorer(baseline).count_categories(grid)
        trace.enable()
        metrics.enable()
        assert _explorer(baseline).count_categories(grid) == plain

    def test_disabled_records_nothing(self, baseline, grid):
        _explorer(baseline).explore_arrays(grid)
        assert trace.get_tracer().roots == []
        assert len(metrics.get_registry()) == 0

    def test_sweep_span_structure(self, baseline, grid):
        trace.enable()
        _explorer(baseline).explore_arrays(grid)
        (root,) = trace.get_tracer().roots
        assert root.name == "sweep"
        chunk_spans = [c for c in root.children if c.name == "chunk"]
        assert len(chunk_spans) == -(-len(grid) // 7)  # ceil(points / chunk_size)
        for sp in chunk_spans:
            assert sp.duration_s is not None
            assert "evals_per_s" in sp.attributes
            assert sp.attributes["points"] == sp.attributes["valid"] + sp.attributes["invalid"]
        assert root.attributes["cache_hit_ratio"] == 0.0
        assert root.attributes["valid_points"] == len(grid)
        assert [c.name for c in root.children][-1] == "classify"

    def test_metrics_recorded_when_enabled(self, baseline, grid):
        metrics.enable()
        explorer = _explorer(baseline)
        explorer.explore_arrays(grid)
        explorer.explore_arrays(grid)  # warm pass: all hits
        reg = metrics.get_registry()
        assert reg.counter("focal_evaluations_total").value == len(grid)
        assert reg.counter("focal_cache_hits_total").value == len(grid)
        assert reg.gauge("focal_cache_hit_ratio").value == 0.5


class TestMonteCarloParity:
    def test_sample_verdicts_identical_when_traced(self, baseline):
        edge = DesignPoint("edge", area=1.1, perf=1.0, power=0.6)
        plain = sample_verdicts(edge, baseline, EMBODIED_DOMINATED, samples=2000)
        trace.enable()
        metrics.enable()
        traced = sample_verdicts(edge, baseline, EMBODIED_DOMINATED, samples=2000)
        assert traced == plain

    def test_measurement_noise_identical_when_traced(self, baseline):
        edge = DesignPoint("edge", area=1.1, perf=1.0, power=0.6)
        plain = sample_measurement_noise(edge, baseline, 0.8, samples=2000)
        trace.enable()
        traced = sample_measurement_noise(edge, baseline, 0.8, samples=2000)
        assert traced == plain

    def test_convergence_checkpoints_recorded(self, baseline):
        edge = DesignPoint("edge", area=1.1, perf=1.0, power=0.6)
        trace.enable()
        result = sample_verdicts(edge, baseline, EMBODIED_DOMINATED, samples=1000)
        (span_,) = trace.get_tracer().roots
        rows = span_.attributes["convergence"]
        assert [row["samples"] for row in rows] == [100 * i for i in range(1, 11)]
        final = rows[-1]
        assert final["strong"] == result.strong
        assert final["weak"] == result.weak
        assert final["less"] == result.less
        assert final["neutral"] == result.neutral
        # Each checkpoint is a proper probability mix.
        for row in rows:
            total = row["strong"] + row["weak"] + row["less"] + row["neutral"]
            assert total == pytest.approx(1.0)


class TestCacheStats:
    def test_stats_snapshot(self, baseline, grid):
        explorer = _explorer(baseline)
        explorer.explore_arrays(grid)
        stats = explorer.cache.stats()
        assert stats.hits == 0
        assert stats.misses == len(grid)
        assert stats.size == len(grid)
        assert stats.hit_ratio == 0.0
        explorer.explore_arrays(grid)
        stats = explorer.cache.stats()
        assert stats.hits == len(grid)
        assert stats.hit_ratio == 0.5
        assert stats.as_dict() == {
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_ratio": 0.5,
            "size": len(grid),
        }

    def test_empty_cache_ratio_is_zero(self):
        assert FactoryCache(factory).stats().hit_ratio == 0.0

    def test_reset_zeroes_counters_keeps_entries(self, baseline, grid):
        explorer = _explorer(baseline)
        explorer.explore_arrays(grid)
        cache = explorer.cache
        cache.reset()
        assert cache.hits == 0 and cache.misses == 0
        assert len(cache) == len(grid)
        explorer.explore_arrays(grid)  # warm: all hits after reset
        assert cache.stats().hit_ratio == 1.0

    def test_record_is_the_single_choke_point(self):
        cache = FactoryCache(factory)
        cache.record(hits=3, misses=2)
        assert (cache.hits, cache.misses) == (3, 2)
        stats = cache.stats()
        assert stats.lookups == 5
        assert stats.hit_ratio == 0.6
