"""Unit tests for constrained selection over exploration results."""

from __future__ import annotations

import pytest

from repro.amdahl.symmetric import SymmetricMulticore
from repro.core.design import DesignPoint
from repro.core.errors import ConfigurationError
from repro.core.scenario import OPERATIONAL_DOMINATED, UseScenario
from repro.dse.explorer import Explorer
from repro.dse.grid import ParameterGrid
from repro.dse.optimizer import max_perf_subject_to_ncf, min_ncf_subject_to_perf


@pytest.fixture
def results(baseline):
    explorer = Explorer(
        factory=lambda p: SymmetricMulticore(
            cores=int(p["cores"]), parallel_fraction=0.9
        ).design_point(),
        baseline=baseline,
        weight=OPERATIONAL_DOMINATED,
    )
    return explorer.explore(ParameterGrid({"cores": [1, 2, 4, 8, 16, 32]}))


class TestMaxPerf:
    def test_cap_respected(self, results):
        best = max_perf_subject_to_ncf(results, ncf_cap=3.0)
        assert best is not None
        assert best.ncf_fixed_work <= 3.0
        # No faster feasible design exists.
        for r in results:
            if r.ncf_fixed_work <= 3.0:
                assert r.perf <= best.perf

    def test_loose_cap_picks_fastest(self, results):
        best = max_perf_subject_to_ncf(results, ncf_cap=1e9)
        assert best.params["cores"] == 32

    def test_infeasible_returns_none(self, results):
        assert max_perf_subject_to_ncf(results, ncf_cap=1e-6) is None

    def test_both_scenarios_constraint_is_stricter(self, results):
        loose = max_perf_subject_to_ncf(results, ncf_cap=5.0)
        strict = max_perf_subject_to_ncf(
            results, ncf_cap=5.0, require_both_scenarios=True
        )
        assert strict is None or strict.perf <= loose.perf

    def test_scenario_selects_proxy(self, results):
        fw = max_perf_subject_to_ncf(results, 4.0, UseScenario.FIXED_WORK)
        ft = max_perf_subject_to_ncf(results, 4.0, UseScenario.FIXED_TIME)
        # Fixed-time is harsher for multicores (power grows faster), so
        # its winner cannot be faster than fixed-work's.
        assert ft.perf <= fw.perf

    def test_requires_results(self):
        with pytest.raises(ConfigurationError):
            max_perf_subject_to_ncf([], 1.0)

    def test_rejects_bad_cap(self, results):
        with pytest.raises(ConfigurationError):
            max_perf_subject_to_ncf(results, 0.0)


class TestMinNCF:
    def test_floor_respected(self, results):
        best = min_ncf_subject_to_perf(results, perf_floor=4.0)
        assert best is not None
        assert best.perf >= 4.0
        for r in results:
            if r.perf >= 4.0:
                assert r.ncf_fixed_work >= best.ncf_fixed_work

    def test_trivial_floor_picks_greenest(self, results):
        best = min_ncf_subject_to_perf(results, perf_floor=0.5)
        assert best.params["cores"] == 1  # the baseline itself

    def test_infeasible_returns_none(self, results):
        assert min_ncf_subject_to_perf(results, perf_floor=1e9) is None

    def test_rejects_bad_floor(self, results):
        with pytest.raises(ConfigurationError):
            min_ncf_subject_to_perf(results, 0.0)

    def test_duality_with_max_perf(self, results):
        """Selecting by each other's optimum is self-consistent."""
        fastest_green = max_perf_subject_to_ncf(results, ncf_cap=4.0)
        greenest_fast = min_ncf_subject_to_perf(
            results, perf_floor=fastest_green.perf
        )
        assert greenest_fast.ncf_fixed_work <= 4.0
