"""Out-of-core columnar blocks: the memmap backing must be a pure
transport swap — same allocate/attach/write/rows/release contract as
shared memory, byte-identical sweep results, nothing left on disk
afterwards — under clean runs and under crash + resume."""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

from repro.core.design import DesignPoint
from repro.core.scenario import EMBODIED_DOMINATED
from repro.dse import parallel
from repro.dse.batch import BatchExplorer
from repro.dse.factories import SymmetricMulticoreFactory
from repro.dse.grid import ParameterGrid, linear_range
GRID = ParameterGrid({"cores": [1, 2, 4, 8, 16], "f": linear_range(0.5, 0.99, 7)})


@dataclasses.dataclass(frozen=True)
class _CrashOnceVectorFactory:
    """A vector factory whose worker dies (hard, ``os._exit``) the
    first time it sees the grid's tail — once, flagged through *flag*
    so the resumed run evaluates clean. Stays a genuine
    :class:`VectorFactory` so the sweep takes the parallel-columnar
    (and hence out-of-core) path, unlike ``FaultPlan.wrap``."""

    inner: SymmetricMulticoreFactory
    flag: str

    def __call__(self, params):
        return self.inner(params)

    def batch_arrays(self, columns):
        cores = np.asarray(columns["cores"])
        if cores.size and cores.max() >= 32 and not os.path.exists(self.flag):
            open(self.flag, "w").close()
            os._exit(13)
        return self.inner.batch_arrays(columns)

    def design_points(self, chunk, arrays):
        return self.inner.design_points(chunk, arrays)


def _explorer(**kwargs) -> BatchExplorer:
    kwargs.setdefault("factory", SymmetricMulticoreFactory())
    return BatchExplorer(
        baseline=DesignPoint.baseline("baseline"),
        weight=EMBODIED_DOMINATED,
        **kwargs,
    )


def assert_same_sweep(result, reference) -> None:
    assert result.params == reference.params
    assert tuple(result.designs) == tuple(reference.designs)
    assert np.array_equal(result.ncf_fixed_work, reference.ncf_fixed_work)
    assert np.array_equal(result.ncf_fixed_time, reference.ncf_fixed_time)
    assert np.array_equal(result.codes, reference.codes)


class TestSpillPolicy:
    def test_threshold_selects_backing(self, tmp_path):
        assert parallel._should_spill(100, tmp_path, 100)
        assert not parallel._should_spill(99, tmp_path, 100)
        assert parallel._should_spill(100, None, 50)  # threshold alone
        assert parallel._should_spill(1, tmp_path, None)  # bare dir: always
        assert not parallel._should_spill(10**9, None, None)

    def test_block_spills_at_threshold(self, tmp_path):
        block = parallel.ColumnarBlock.allocate(
            64, spill_dir=tmp_path, spill_bytes=1
        )
        try:
            assert block.backing == "file"
            assert block.name.startswith(parallel.FILE_PREFIX)
            assert block.nbytes == 0
            assert block.spill_nbytes >= 64 * parallel.BYTES_PER_POINT
            assert list(tmp_path.glob("focal-block-*.bin"))
        finally:
            block.release()
        assert not list(tmp_path.glob("focal-block-*.bin"))

    def test_block_below_threshold_stays_in_ram(self, tmp_path):
        block = parallel.ColumnarBlock.allocate(
            64, spill_dir=tmp_path, spill_bytes=10**12
        )
        try:
            assert block.backing in ("shm", "local")
            assert not list(tmp_path.glob("focal-block-*.bin"))
        finally:
            block.release()


class TestSpilledBlockContract:
    def test_write_rows_roundtrip_through_attach(self, tmp_path):
        total = 32
        parent = parallel.ColumnarBlock.allocate(total, spill_dir=tmp_path)
        try:
            area = np.arange(total, dtype=np.float64)
            perf = area * 2.0
            power = area * 3.0
            valid = np.ones(total, dtype=np.bool_)
            # A second mapping of the same file (what a worker does).
            attached = parallel.ColumnarBlock.attach(parent.name, total)
            try:
                attached.write(0, total, area, perf, power, valid)
            finally:
                attached.release()
            got = parent.rows(0, total)
            assert np.array_equal(got[0], area)
            assert np.array_equal(got[1], perf)
            assert np.array_equal(got[2], power)
            assert np.array_equal(got[3], valid)
        finally:
            parent.release()

    def test_release_idempotent_and_unlinks(self, tmp_path):
        block = parallel.ColumnarBlock.allocate(8, spill_dir=tmp_path)
        path = block.name[len(parallel.FILE_PREFIX):]
        assert os.path.exists(path)
        block.release()
        assert not os.path.exists(path)
        block.release()  # second call is a no-op, not an error
        assert parallel.live_blocks() == frozenset()

    def test_arena_spills_and_serves_readonly_views(self, tmp_path):
        columns = {
            "cores": np.array([1, 2, 4, 8], dtype=np.int64),
            "f": np.array([0.5, 0.9, 0.95, 0.99]),
        }
        arena = parallel.GridArena.publish(columns, spill_dir=tmp_path)
        try:
            assert arena is not None
            assert arena.backing == "file"
            assert arena.spill_nbytes > 0 and arena.nbytes == 0
            attached = parallel.GridArena.attach(
                arena.name, arena.layout, arena.total
            )
            try:
                views = attached.columns(1, 3)
                assert np.array_equal(views["cores"], [2, 4])
                assert np.array_equal(views["f"], [0.9, 0.95])
                with pytest.raises(ValueError):
                    views["cores"][0] = 99
            finally:
                attached.release()
        finally:
            if arena is not None:
                arena.release()

    def test_non_numeric_axes_refuse_residency(self):
        assert (
            parallel.GridArena.publish({"name": np.array(["a", "b"])}) is None
        )
        assert parallel.GridArena.publish({}) is None


class TestSpilledSweepParity:
    def test_spilled_sweep_is_byte_identical(self, tmp_path):
        reference = _explorer(workers=2).explore_arrays(GRID)
        spilled = _explorer(workers=2, spill_dir=tmp_path, spill_bytes=1)
        result = spilled.explore_arrays(GRID)
        assert_same_sweep(result, reference)
        stats = spilled.last_sweep
        assert stats.spill_bytes >= len(GRID) * parallel.BYTES_PER_POINT
        assert "spilled" in stats.summary()
        assert stats.as_dict()["spill_bytes"] == stats.spill_bytes
        # Everything under the spill dir was cleaned on the way out:
        # blocks, arena, worker event files, heartbeat dirs.
        assert list(tmp_path.iterdir()) == []

    def test_spilled_matches_serial_too(self, tmp_path):
        reference = _explorer().explore_arrays(GRID)
        result = _explorer(
            workers=2, spill_dir=tmp_path, spill_bytes=1
        ).explore_arrays(GRID)
        assert_same_sweep(result, reference)

    def test_spill_threshold_not_met_reports_zero(self, tmp_path):
        explorer = _explorer(
            workers=2, spill_dir=tmp_path, spill_bytes=10**12
        )
        explorer.explore_arrays(GRID)
        assert explorer.last_sweep.spill_bytes == 0
        assert "spilled" not in explorer.last_sweep.summary()

    def test_spill_knobs_validated(self, tmp_path):
        from repro.core.errors import ValidationError

        with pytest.raises(ValidationError):
            _explorer(spill_bytes=-1)


@pytest.mark.chaos
class TestSpilledCrashResume:
    def test_crash_mid_spilled_sweep_then_resume_identical(self, tmp_path):
        """A sweep running out-of-core dies partway (real worker crash,
        unsupervised) with a checkpoint; the resumed run — also spilled
        — finishes byte-identical to an in-RAM, never-crashed sweep."""
        from concurrent.futures.process import BrokenProcessPool

        grid = ParameterGrid({"cores": list(range(1, 33)), "f": [0.5, 0.9]})
        reference = _explorer(chunk_size=16).explore_arrays(grid)
        spill = tmp_path / "spill"
        ckpt = tmp_path / "sweep.ckpt"
        crashing = _CrashOnceVectorFactory(
            inner=SymmetricMulticoreFactory(), flag=str(tmp_path / "crashed")
        )
        doomed = _explorer(
            factory=crashing,
            chunk_size=16,
            workers=2,
            spill_dir=spill,
            spill_bytes=1,
        )
        with pytest.raises(BrokenProcessPool):
            doomed.explore_arrays(grid, checkpoint=ckpt)
        assert os.path.exists(crashing.flag), "the fault never fired"
        resumed = _explorer(
            factory=crashing,
            chunk_size=16,
            workers=2,
            spill_dir=spill,
            spill_bytes=1,
        )
        result = resumed.explore_arrays(grid, checkpoint=ckpt, resume=True)
        assert_same_sweep(result, reference)
        assert resumed.last_sweep.spill_bytes > 0
        # The spill dir holds no leftover blocks or event files.
        assert list(spill.glob("focal-*")) == []
