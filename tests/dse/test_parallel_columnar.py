"""The parallel-columnar engine must be invisible in the results:
byte-identical sweep output, identical cache contents and identical
category counts versus both the single-process columnar path and the
scalar path — at every grid/chunk geometry, with and without shared
memory, and with nothing (workers, shm segments, module state) left
behind afterwards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scenario import EMBODIED_DOMINATED
from repro.dse import parallel
from repro.dse.batch import (
    BatchExplorer,
    FactoryCache,
    params_key,
    params_keys,
)
from repro.dse.factories import (
    AsymmetricMulticoreFactory,
    SymmetricMulticoreFactory,
)
from repro.dse.grid import ParameterGrid, linear_range

GRID = ParameterGrid({"cores": [1, 2, 4, 8, 16], "f": linear_range(0.5, 0.99, 7)})
#: n <= m corners raise DomainError scalar-side, are masked vector-side.
ASYM_GRID = ParameterGrid({"n": [2, 3, 4, 8, 16], "m": [1, 4, 8]})


def _explorer(factory, baseline, **kwargs) -> BatchExplorer:
    return BatchExplorer(
        factory=factory, baseline=baseline, weight=EMBODIED_DOMINATED, **kwargs
    )


def assert_same_entries(cache, reference_cache) -> None:
    """Cache equality that copes with DomainError's identity compare."""
    entries = dict(cache._entries)
    reference = dict(reference_cache._entries)
    assert entries.keys() == reference.keys()
    for key, outcome in entries.items():
        expected = reference[key]
        if isinstance(expected, Exception):
            assert type(outcome) is type(expected)
            assert str(outcome) == str(expected)
        else:
            assert outcome == expected


def assert_same_sweep(result, reference) -> None:
    assert result.params == reference.params
    assert tuple(result.designs) == tuple(reference.designs)
    assert np.array_equal(result.ncf_fixed_work, reference.ncf_fixed_work)
    assert np.array_equal(result.ncf_fixed_time, reference.ncf_fixed_time)
    assert np.array_equal(result.codes, reference.codes)


class TestKeyUnification:
    def test_params_keys_match_params_key(self):
        chunk = list(GRID)[:7]
        assert params_keys(chunk) == [params_key(params) for params in chunk]

    def test_store_many_routes_through_shared_keys(self, baseline):
        factory = SymmetricMulticoreFactory()
        cache = FactoryCache(factory)
        chunk = list(GRID)[:5]
        outcomes = [factory(params) for params in chunk]
        cache.store_many(params_keys(chunk), outcomes, misses=len(chunk))
        assert len(cache) == len(chunk)
        assert cache.misses == len(chunk)
        for params, outcome in zip(chunk, outcomes):
            assert cache.lookup(params_key(params)) is outcome

    def test_store_many_length_mismatch_raises(self):
        from repro.core.errors import ValidationError

        cache = FactoryCache(SymmetricMulticoreFactory())
        with pytest.raises(ValidationError):
            cache.store_many([("a", 1)], [])


class TestParity:
    def test_matches_columnar_and_scalar(self, baseline):
        columnar = _explorer(SymmetricMulticoreFactory(), baseline)
        reference = columnar.explore_arrays(GRID)
        par = _explorer(SymmetricMulticoreFactory(), baseline, workers=2)
        result = par.explore_arrays(GRID)
        assert par.last_sweep.mode == "parallel-columnar"
        assert_same_sweep(result, reference)
        assert dict(par.cache._entries) == dict(columnar.cache._entries)
        assert par.cache.stats() == columnar.cache.stats()

    def test_invalid_corners_capture_domain_errors(self, baseline):
        columnar = _explorer(
            AsymmetricMulticoreFactory(parallel_fraction=0.9), baseline
        )
        reference = columnar.explore_arrays(ASYM_GRID)
        par = _explorer(
            AsymmetricMulticoreFactory(parallel_fraction=0.9),
            baseline,
            workers=2,
            chunk_size=4,
        )
        result = par.explore_arrays(ASYM_GRID)
        assert_same_sweep(result, reference)
        # Skips really happened, and the invalid corners were memoized
        # as genuine DomainError objects, like the scalar path stores.
        assert 0 < len(result.params) < len(ASYM_GRID)
        assert_same_entries(par.cache, columnar.cache)

    def test_category_counts_identical(self, baseline):
        serial = _explorer(SymmetricMulticoreFactory(), baseline)
        par = _explorer(SymmetricMulticoreFactory(), baseline, workers=2)
        assert (
            par.explore_arrays(GRID).category_counts()
            == serial.explore_arrays(GRID).category_counts()
        )


class TestEdgeGeometry:
    """Shard planning must cover every degenerate chunk/grid shape."""

    @pytest.mark.parametrize(
        "chunk_size,axes",
        [
            (1, {"cores": [1, 2, 4], "f": [0.3, 0.9]}),  # chunk_size=1
            (64, {"cores": [1, 2, 4], "f": [0.3, 0.9]}),  # grid < one chunk
            (4, {"cores": [2], "f": [0.5]}),  # single-point grid
            (3, {"cores": [1, 2, 4, 8, 16], "f": [0.25, 0.75]}),  # ragged tail
        ],
        ids=["chunk1", "chunk-bigger-than-grid", "single-point", "partial-tail"],
    )
    def test_bit_exact_vs_scalar(self, baseline, chunk_size, axes):
        grid = ParameterGrid(axes)
        reference = _explorer(
            SymmetricMulticoreFactory(), baseline, chunk_size=chunk_size
        ).explore_arrays(grid)
        result = _explorer(
            SymmetricMulticoreFactory(),
            baseline,
            chunk_size=chunk_size,
            workers=2,
        ).explore_arrays(grid)
        assert_same_sweep(result, reference)

    def test_final_partial_chunk_entirely_invalid(self, baseline):
        # 4 points at chunk_size=2: the last chunk is [m=8]x{n=4 is
        # valid? no:] — axes chosen so the trailing partial chunk holds
        # only n <= m corners, which the kernel masks invalid and the
        # parent re-evaluates to genuine DomainErrors.
        grid = ParameterGrid({"n": [4], "m": [1, 2, 8, 16]})
        factory = AsymmetricMulticoreFactory(parallel_fraction=0.9)
        reference = _explorer(
            factory, baseline, chunk_size=2
        ).explore_arrays(grid)
        par = _explorer(
            AsymmetricMulticoreFactory(parallel_fraction=0.9),
            baseline,
            chunk_size=2,
            workers=2,
        )
        result = par.explore_arrays(grid)
        assert_same_sweep(result, reference)
        assert len(result.params) == 2  # m=1, m=2 survive; m=8, m=16 do not


class TestSharedMemoryFallback:
    def test_pickle_fallback_is_bit_exact(self, baseline, monkeypatch):
        # Force the private-memory fallback (a host with no usable
        # shared segments at all): block allocation "fails", the grid
        # arena cannot publish, and the engine must ship grid columns
        # out and result columns back by pickle instead.
        real_allocate = parallel.ColumnarBlock.allocate.__func__

        def no_shm(cls, total, **kwargs):
            block = real_allocate(cls, total, **kwargs)
            if block._shm is not None:
                block.release()
            return cls(total, None, owner=True)

        monkeypatch.setattr(
            parallel.ColumnarBlock, "allocate", classmethod(no_shm)
        )
        monkeypatch.setattr(
            parallel.GridArena,
            "publish",
            classmethod(lambda cls, columns, **kwargs: None),
        )
        reference = _explorer(
            SymmetricMulticoreFactory(), baseline
        ).explore_arrays(GRID)
        par = _explorer(SymmetricMulticoreFactory(), baseline, workers=2)
        result = par.explore_arrays(GRID)
        assert_same_sweep(result, reference)
        assert par.last_sweep.mode == "parallel-columnar"
        assert par.last_sweep.shm_bytes == 0  # fallback reported honestly

    def test_shm_bytes_reported_when_backed(self, baseline):
        par = _explorer(SymmetricMulticoreFactory(), baseline, workers=2)
        par.explore_arrays(GRID)
        assert par.last_sweep.shm_bytes >= len(GRID) * parallel.BYTES_PER_POINT


class TestHygiene:
    def test_no_leaked_segments_or_state_after_sweep(self, baseline):
        par = _explorer(SymmetricMulticoreFactory(), baseline, workers=2)
        par.explore_arrays(GRID)
        assert parallel.live_blocks() == frozenset()
        assert parallel._STATE == {}

    def test_block_release_is_idempotent(self):
        block = parallel.ColumnarBlock.allocate(8)
        name = block.name
        block.release()
        block.release()
        assert parallel.live_blocks() == frozenset()
        if name is not None:
            from multiprocessing import shared_memory

            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_plan_shards_chunk_aligned(self):
        spans = parallel.plan_shards(100, 0, 16, workers=3)
        assert spans[0][0] == 0 and spans[-1][1] == 100
        for (lo, hi), (nlo, _) in zip(spans, spans[1:]):
            assert hi == nlo
            assert lo % 16 == 0
        # Restored prefixes are excluded and alignment is preserved.
        resumed = parallel.plan_shards(100, 32, 16, workers=3)
        assert resumed[0][0] == 32 and resumed[-1][1] == 100
        assert parallel.plan_shards(100, 100, 16, workers=3) == []
