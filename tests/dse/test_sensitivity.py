"""Unit tests for tornado sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.dse.sensitivity import cached_metric, tornado


def ncf_metric(params):
    """A FOCAL-shaped metric: alpha*area + (1-alpha)*energy."""
    return params["alpha"] * params["area"] + (1 - params["alpha"]) * params["energy"]


NOMINAL = {"alpha": 0.5, "area": 1.2, "energy": 0.8}


class TestTornado:
    def test_sorted_by_swing(self):
        entries = tornado(
            ncf_metric,
            NOMINAL,
            {"area": (1.0, 1.4), "energy": (0.75, 0.85), "alpha": (0.4, 0.6)},
        )
        swings = [e.swing for e in entries]
        assert swings == sorted(swings, reverse=True)

    def test_swing_values_exact(self):
        entries = tornado(ncf_metric, NOMINAL, {"area": (1.0, 1.4)})
        entry = entries[0]
        assert entry.metric_at_low == pytest.approx(0.5 * 1.0 + 0.5 * 0.8)
        assert entry.metric_at_high == pytest.approx(0.5 * 1.4 + 0.5 * 0.8)
        assert entry.swing == pytest.approx(0.2)

    def test_baseline_metric_recorded(self):
        entries = tornado(ncf_metric, NOMINAL, {"area": (1.0, 1.4)})
        assert entries[0].baseline_metric == pytest.approx(ncf_metric(NOMINAL))

    def test_signed_slope_direction(self):
        entries = tornado(ncf_metric, NOMINAL, {"area": (1.0, 1.4)})
        assert entries[0].signed_slope > 0  # NCF rises with area

    def test_degenerate_range_zero_slope(self):
        entries = tornado(ncf_metric, NOMINAL, {"area": (1.2, 1.2)})
        assert entries[0].signed_slope == 0.0
        assert entries[0].swing == 0.0

    def test_other_params_stay_nominal(self):
        seen = []

        def spy(params):
            seen.append(dict(params))
            return 0.0

        tornado(spy, NOMINAL, {"area": (1.0, 1.4)})
        # Calls: baseline, low, high — alpha/energy never move.
        assert all(p["alpha"] == 0.5 and p["energy"] == 0.8 for p in seen)

    def test_requires_ranges(self):
        with pytest.raises(ConfigurationError):
            tornado(ncf_metric, NOMINAL, {})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            tornado(ncf_metric, NOMINAL, {"volume": (0, 1)})


class TestCachedMetric:
    def counting_metric(self):
        calls = []

        def metric(params):
            calls.append(dict(params))
            return ncf_metric(params)

        return metric, calls

    def test_repeat_lookups_hit_cache(self):
        metric, calls = self.counting_metric()
        memo = cached_metric(metric)
        assert memo(NOMINAL) == memo(NOMINAL) == ncf_metric(NOMINAL)
        assert len(calls) == 1

    def test_key_ignores_param_order(self):
        metric, calls = self.counting_metric()
        memo = cached_metric(metric)
        memo({"alpha": 0.5, "area": 1.2, "energy": 0.8})
        memo({"energy": 0.8, "area": 1.2, "alpha": 0.5})
        assert len(calls) == 1

    def test_tornado_resweep_with_shared_cache(self):
        """A second tornado over the same ranges re-evaluates nothing
        when the caller threads one cache dict through both runs."""
        metric, calls = self.counting_metric()
        shared: dict = {}
        ranges = {"area": (1.0, 1.4), "energy": (0.75, 0.85)}
        first = tornado(metric, NOMINAL, ranges, cache=shared)
        evaluations = len(calls)
        second = tornado(metric, NOMINAL, ranges, cache=shared)
        assert len(calls) == evaluations  # zero new metric calls
        assert first == second

    def test_narrowed_range_only_evaluates_new_corners(self):
        metric, calls = self.counting_metric()
        shared: dict = {}
        tornado(metric, NOMINAL, {"area": (1.0, 1.4)}, cache=shared)
        evaluations = len(calls)
        tornado(metric, NOMINAL, {"area": (1.0, 1.3)}, cache=shared)
        # Baseline and the low corner are cached; only area=1.3 is new.
        assert len(calls) == evaluations + 1
