"""Unit tests for tornado sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.dse.sensitivity import tornado


def ncf_metric(params):
    """A FOCAL-shaped metric: alpha*area + (1-alpha)*energy."""
    return params["alpha"] * params["area"] + (1 - params["alpha"]) * params["energy"]


NOMINAL = {"alpha": 0.5, "area": 1.2, "energy": 0.8}


class TestTornado:
    def test_sorted_by_swing(self):
        entries = tornado(
            ncf_metric,
            NOMINAL,
            {"area": (1.0, 1.4), "energy": (0.75, 0.85), "alpha": (0.4, 0.6)},
        )
        swings = [e.swing for e in entries]
        assert swings == sorted(swings, reverse=True)

    def test_swing_values_exact(self):
        entries = tornado(ncf_metric, NOMINAL, {"area": (1.0, 1.4)})
        entry = entries[0]
        assert entry.metric_at_low == pytest.approx(0.5 * 1.0 + 0.5 * 0.8)
        assert entry.metric_at_high == pytest.approx(0.5 * 1.4 + 0.5 * 0.8)
        assert entry.swing == pytest.approx(0.2)

    def test_baseline_metric_recorded(self):
        entries = tornado(ncf_metric, NOMINAL, {"area": (1.0, 1.4)})
        assert entries[0].baseline_metric == pytest.approx(ncf_metric(NOMINAL))

    def test_signed_slope_direction(self):
        entries = tornado(ncf_metric, NOMINAL, {"area": (1.0, 1.4)})
        assert entries[0].signed_slope > 0  # NCF rises with area

    def test_degenerate_range_zero_slope(self):
        entries = tornado(ncf_metric, NOMINAL, {"area": (1.2, 1.2)})
        assert entries[0].signed_slope == 0.0
        assert entries[0].swing == 0.0

    def test_other_params_stay_nominal(self):
        seen = []

        def spy(params):
            seen.append(dict(params))
            return 0.0

        tornado(spy, NOMINAL, {"area": (1.0, 1.4)})
        # Calls: baseline, low, high — alpha/energy never move.
        assert all(p["alpha"] == 0.5 and p["energy"] == 0.8 for p in seen)

    def test_requires_ranges(self):
        with pytest.raises(ConfigurationError):
            tornado(ncf_metric, NOMINAL, {})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            tornado(ncf_metric, NOMINAL, {"volume": (0, 1)})
