"""The work-stealing scheduler must be invisible in the results.

Shard planning (static and guided) has to cover every pending run
exactly once, chunk-aligned, at any worker count — and the order shards
actually execute in must never change a single result byte, because
every shard owns disjoint rows of the shared block. ``workers="auto"``
is a scheduling decision too: whatever it resolves to, the sweep output
is byte-identical to both the serial and the forced-pool runs.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.errors import ValidationError
from repro.core.scenario import EMBODIED_DOMINATED
from repro.dse import parallel
from repro.dse.batch import BatchExplorer
from repro.dse.factories import SymmetricMulticoreFactory
from repro.dse.grid import ParameterGrid, linear_range

GRID = ParameterGrid({"cores": [1, 2, 4, 8, 16], "f": linear_range(0.5, 0.99, 7)})


def _explorer(**kwargs) -> BatchExplorer:
    from repro.core.design import DesignPoint

    return BatchExplorer(
        factory=SymmetricMulticoreFactory(),
        baseline=DesignPoint.baseline("baseline"),
        weight=EMBODIED_DOMINATED,
        **kwargs,
    )


def _sizes_in_chunks(spans, chunk_size):
    return [-(-(hi - lo) // chunk_size) for lo, hi in spans]


def assert_partitions(spans, runs):
    """*spans* must tile *runs* exactly: same coverage, no overlap, no
    span straddling a run boundary."""
    by_run = {run: [] for run in runs if run[1] > run[0]}
    for lo, hi in spans:
        assert lo < hi
        owners = [r for r in by_run if r[0] <= lo and hi <= r[1]]
        assert len(owners) == 1, f"span ({lo}, {hi}) straddles runs {runs}"
        by_run[owners[0]].append((lo, hi))
    for (run_lo, run_hi), parts in by_run.items():
        assert parts == sorted(parts)
        cursor = run_lo
        for lo, hi in parts:
            assert lo == cursor
            cursor = hi
        assert cursor == run_hi


class TestPlanShardRuns:
    """Edge cases of the static planner."""

    def test_empty_runs(self):
        assert parallel.plan_shard_runs([], 16, 4) == []

    def test_degenerate_runs_dropped(self):
        assert parallel.plan_shard_runs([(5, 5), (9, 3)], 16, 4) == []

    def test_chunk_bigger_than_total(self):
        # One run smaller than a single chunk: one span, clipped.
        assert parallel.plan_shard_runs([(0, 7)], 64, 4) == [(0, 7)]

    def test_single_chunk_runs(self):
        runs = [(0, 16), (32, 48), (80, 96)]
        spans = parallel.plan_shard_runs(runs, 16, 2)
        assert_partitions(spans, runs)
        assert spans == runs  # 3 chunks over 8 shard slots: 1 chunk each

    def test_maximal_workers_one_chunk_per_shard(self):
        # More shard slots than chunks: every span is exactly one chunk.
        runs = [(0, 160)]
        spans = parallel.plan_shard_runs(runs, 16, workers=64)
        assert_partitions(spans, runs)
        assert _sizes_in_chunks(spans, 16) == [1] * 10

    def test_never_straddles_runs(self):
        runs = [(0, 64), (128, 144), (160, 256)]
        spans = parallel.plan_shard_runs(runs, 16, 2)
        assert_partitions(spans, runs)


class TestPlanStealRuns:
    """Properties of the guided (geometric) planner."""

    CASES = [
        ([(0, 256)], 16, 2),
        ([(0, 256)], 16, 8),
        ([(0, 7)], 64, 4),  # sub-chunk run
        ([(0, 16)], 16, 4),  # single chunk
        ([(0, 64), (128, 144), (160, 256)], 16, 2),  # store-gap runs
        ([(0, 1024)], 1, 3),  # chunk_size=1
        ([(0, 160)], 16, 64),  # workers >> chunks
    ]

    @pytest.mark.parametrize("runs,chunk_size,workers", CASES)
    def test_partitions_runs_chunk_aligned(self, runs, chunk_size, workers):
        spans = parallel.plan_steal_runs(runs, chunk_size, workers)
        assert_partitions(spans, runs)
        for lo, hi in spans:
            run_lo, run_hi = next(r for r in runs if r[0] <= lo and hi <= r[1])
            assert (lo - run_lo) % chunk_size == 0
            assert hi == run_hi or (hi - run_lo) % chunk_size == 0

    @pytest.mark.parametrize("runs,chunk_size,workers", CASES)
    def test_sizes_shrink_geometrically(self, runs, chunk_size, workers):
        spans = parallel.plan_steal_runs(runs, chunk_size, workers)
        sizes = _sizes_in_chunks(spans, chunk_size)
        total = sum(sizes)
        # No shard ever exceeds the first guided budget — the unclipped
        # take is monotonically nonincreasing because the backlog only
        # shrinks — and none is ever empty.
        budget = max(1, total // (workers * parallel.STEAL_FACTOR))
        for size in sizes:
            assert 1 <= size <= budget

    def test_tail_shrinks_to_single_chunks(self):
        spans = parallel.plan_steal_runs([(0, 1024)], 16, 2)
        sizes = _sizes_in_chunks(spans, 16)
        assert sizes[-1] == 1
        assert sizes[0] > sizes[-1]

    def test_empty(self):
        assert parallel.plan_steal_runs([], 16, 2) == []
        assert parallel.plan_steal_runs([(4, 4)], 16, 2) == []


class TestStolenOrderParity:
    """Shards own disjoint block rows, so *any* execution order — the
    whole point of stealing is that order is nondeterministic — must
    produce identical bytes."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_shuffled_shard_order_is_byte_identical(self, seed):
        factory = SymmetricMulticoreFactory()
        params = list(GRID)
        columns = {
            name: np.asarray([p[name] for p in params])
            for name in ("cores", "f")
        }
        total = len(params)
        spans = parallel.plan_steal_runs([(0, total)], 4, 2)
        assert len(spans) > 2

        def run(order):
            block = parallel.ColumnarBlock.allocate(total)
            arena = parallel.GridArena.publish(columns)
            try:
                parallel.set_worker_state(factory, block, arena)
                for seq in order:
                    lo, hi = spans[seq]
                    parallel.eval_shard((lo, hi, seq))
                return tuple(
                    np.asarray(col).tobytes()
                    for col in (block.area, block.perf, block.power, block.valid)
                )
            finally:
                parallel.clear_worker_state()
                if arena is not None:
                    arena.release()
                block.release()

        sequential = run(range(len(spans)))
        order = list(range(len(spans)))
        random.Random(seed).shuffle(order)
        assert run(order) == sequential

    def test_static_and_steal_schedules_match_serial(self):
        reference = _explorer().explore_arrays(GRID)
        for scheduler in ("steal", "static"):
            explorer = _explorer(workers=2, scheduler=scheduler)
            result = explorer.explore_arrays(GRID)
            assert result.params == reference.params
            assert np.array_equal(result.ncf_fixed_work, reference.ncf_fixed_work)
            assert np.array_equal(result.ncf_fixed_time, reference.ncf_fixed_time)
            assert np.array_equal(result.codes, reference.codes)
            assert explorer.last_sweep.scheduler == scheduler

    def test_scheduler_validated(self):
        with pytest.raises(ValidationError):
            _explorer(scheduler="fifo")


class TestAutoWorkers:
    def test_auto_matches_serial_bytes(self):
        reference = _explorer().explore_arrays(GRID)
        auto = _explorer(workers="auto")
        result = auto.explore_arrays(GRID)
        assert result.params == reference.params
        assert np.array_equal(result.ncf_fixed_work, reference.ncf_fixed_work)
        assert np.array_equal(result.ncf_fixed_time, reference.ncf_fixed_time)
        assert np.array_equal(result.codes, reference.codes)
        stats = auto.last_sweep
        assert stats.auto_workers
        assert "workers auto->" in stats.summary()
        assert stats.as_dict()["auto_workers"] is True

    def test_tiny_sweep_declines_the_pool(self):
        # A 35-point grid evaluates in microseconds: calibration must
        # conclude that process dispatch cannot win and stay serial.
        auto = _explorer(workers="auto")
        auto.explore_arrays(GRID)
        assert auto.last_sweep.workers == 0
        assert "auto->serial" in auto.last_sweep.summary()

    def test_decision_math(self):
        decide = BatchExplorer._auto_decision
        assert decide(10.0, 1) == 0  # nothing to fan out to
        assert decide(0.001, 8) == 0  # sweep too small to matter
        assert decide(10.0, 8) > 0  # long sweep, real cores: engage
        assert decide(10.0, 8) <= 8

    def test_workers_validated(self):
        with pytest.raises(ValidationError):
            _explorer(workers="fast")
        with pytest.raises(ValidationError):
            _explorer(workers=-1)

    def test_warm_cache_skips_calibration(self):
        auto = _explorer(workers="auto")
        auto.explore_arrays(GRID)
        first = auto.cache.stats().misses
        auto.explore_arrays(GRID)  # warm: every point from cache
        assert auto.cache.stats().misses == first
