"""The persistent result store: keys, tiers, durability, maintenance."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.design import DesignPoint
from repro.core.errors import DomainError, ValidationError
from repro.dse.store import (
    MARKER_NAME,
    ChunkProbe,
    ResultStore,
    chunk_store_key,
    point_store_key,
)


def _chunk(n: int, offset: int = 0) -> list[dict]:
    return [{"cores": float(i + offset + 1), "f": 0.5} for i in range(n)]


def _outcomes(chunk: list[dict]) -> list:
    return [
        DesignPoint(
            f"c{params['cores']:g}",
            area=params["cores"],
            perf=params["cores"] ** 0.5,
            power=params["cores"] * 0.9,
        )
        for params in chunk
    ]


def _session(store: ResultStore):
    return store.sweep_session(lambda params: None)


class TestPointKeys:
    def test_axis_order_free(self):
        assert point_store_key({"a": 1.0, "b": 2.0}) == point_store_key(
            {"b": 2.0, "a": 1.0}
        )

    def test_type_tags_never_alias(self):
        values = [2, 2.0, "2", True, None]
        keys = {point_store_key({"x": value}) for value in values}
        assert len(keys) == len(values)

    def test_floats_are_bit_exact(self):
        assert point_store_key({"x": 0.1}) != point_store_key(
            {"x": 0.1 + 1e-17}
        ) or (0.1 == 0.1 + 1e-17)
        assert point_store_key({"x": 0.5}) == point_store_key({"x": 0.5})

    def test_chunk_key_depends_on_order(self):
        keys = [point_store_key({"x": 1.0}), point_store_key({"x": 2.0})]
        assert chunk_store_key(keys) != chunk_store_key(keys[::-1])


class TestMarkerSafety:
    def test_fresh_directory_is_fine(self, tmp_path):
        ResultStore(tmp_path / "new")
        ResultStore(tmp_path)  # empty existing dir

    def test_refuses_foreign_nonempty_directory(self, tmp_path):
        (tmp_path / "precious.txt").write_text("hands off")
        with pytest.raises(ValidationError, match="refusing"):
            ResultStore(tmp_path)

    def test_reopens_marked_store(self, tmp_path):
        store = ResultStore(tmp_path)
        session = _session(store)
        session.put(_chunk(3), _outcomes(_chunk(3)))
        session.flush()
        assert (tmp_path / MARKER_NAME).exists()
        ResultStore(tmp_path)  # no complaint second time

    def test_coerce(self, tmp_path):
        store = ResultStore(tmp_path)
        assert ResultStore.coerce(None) is None
        assert ResultStore.coerce(store) is store
        assert ResultStore.coerce(tmp_path).root == store.root

    def test_negative_lru_bound_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            ResultStore(tmp_path, max_memory_entries=-1)


class TestSweepSession:
    def test_unknown_chunk_all_missing(self, tmp_path):
        probe = _session(ResultStore(tmp_path)).probe(_chunk(4))
        assert probe.missing == [0, 1, 2, 3]
        assert not probe.complete
        assert probe.hit_points == 0

    def test_roundtrip_same_chunking_memory_tier(self, tmp_path):
        store = ResultStore(tmp_path)
        session = _session(store)
        chunk = _chunk(5)
        outcomes = _outcomes(chunk)
        session.put(chunk, outcomes)
        probe = session.probe(chunk)
        assert probe.complete
        assert probe.memory_points == 5
        assert probe.outcomes == outcomes

    def test_roundtrip_fresh_process_disk_tier(self, tmp_path):
        chunk = _chunk(5)
        outcomes = _outcomes(chunk)
        writer = _session(ResultStore(tmp_path))
        writer.put(chunk, outcomes)
        writer.flush()
        store = ResultStore(tmp_path)  # empty LRU: must come from disk
        probe = _session(store).probe(chunk)
        assert probe.complete
        assert probe.disk_points == 5
        assert probe.outcomes == outcomes
        assert store.stats().disk_hits == 5

    def test_cross_chunking_per_point_lookup(self, tmp_path):
        """Points stored at one chunking are found at any other."""
        chunk = _chunk(10)
        writer = _session(ResultStore(tmp_path))
        writer.put(chunk[:6], _outcomes(chunk[:6]))
        writer.put(chunk[6:], _outcomes(chunk[6:]))
        writer.flush()
        reader = _session(ResultStore(tmp_path))
        probe = reader.probe(chunk[3:9])  # straddles both stored objects
        assert probe.complete
        assert probe.outcomes == _outcomes(chunk[3:9])

    def test_partial_probe_reports_missing_rows(self, tmp_path):
        chunk = _chunk(6)
        writer = _session(ResultStore(tmp_path))
        writer.put(chunk[:3], _outcomes(chunk[:3]))
        writer.flush()
        probe = _session(ResultStore(tmp_path)).probe(chunk)
        assert probe.missing == [3, 4, 5]
        assert probe.hit_points == 3
        assert probe.outcomes[:3] == _outcomes(chunk[:3])
        assert probe.outcomes[3:] == [None, None, None]

    def test_identical_chunks_dedupe_to_one_object(self, tmp_path):
        store = ResultStore(tmp_path)
        chunk = _chunk(4)
        outcomes = _outcomes(chunk)
        first = _session(store)
        first.put(chunk, outcomes)
        first.flush()
        second = _session(store)
        second.put(chunk, outcomes)  # index knows the hash: no rewrite
        second.flush()
        objects = list(tmp_path.glob("sweeps/*/objects/*.json"))
        assert len(objects) == 1
        assert store.stats().objects_written == 1

    def test_error_outcomes_roundtrip(self, tmp_path):
        chunk = _chunk(2)
        outcomes = [_outcomes(chunk)[0], DomainError("cores must be >= 1")]
        writer = _session(ResultStore(tmp_path))
        writer.put(chunk, outcomes)
        writer.flush()
        probe = _session(ResultStore(tmp_path)).probe(chunk)
        assert probe.complete
        assert probe.outcomes[0] == outcomes[0]
        assert isinstance(probe.outcomes[1], DomainError)
        assert str(probe.outcomes[1]) == "cores must be >= 1"

    def test_different_factories_never_share(self, tmp_path):
        store = ResultStore(tmp_path)
        chunk = _chunk(3)

        def factory_a(params):
            return None

        class FactoryB:
            def __call__(self, params):
                return None

        session_a = store.sweep_session(factory_a)
        session_a.put(chunk, _outcomes(chunk))
        session_a.flush()
        probe = store.sweep_session(FactoryB()).probe(chunk)
        assert not probe.hit_points


class TestCorruption:
    def _populated(self, tmp_path) -> list[dict]:
        chunk = _chunk(4)
        session = _session(ResultStore(tmp_path))
        session.put(chunk, _outcomes(chunk))
        session.flush()
        return chunk

    def test_truncated_object_recomputes_not_errors(self, tmp_path):
        chunk = self._populated(tmp_path)
        (obj,) = tmp_path.glob("sweeps/*/objects/*.json")
        obj.write_text(obj.read_text()[: obj.stat().st_size // 2])
        store = ResultStore(tmp_path)
        probe = _session(store).probe(chunk)
        assert probe.missing == [0, 1, 2, 3]  # recompute, never a wrong answer
        assert store.stats().corrupt == 1
        assert not obj.exists()  # discarded so the rewrite is clean

    def test_checksum_mismatch_detected(self, tmp_path):
        chunk = self._populated(tmp_path)
        (obj,) = tmp_path.glob("sweeps/*/objects/*.json")
        document = json.loads(obj.read_text())
        document["payload"]["outcomes"][0][2] = (0.25).hex()  # flip a value
        obj.write_text(json.dumps(document))
        store = ResultStore(tmp_path)
        probe = _session(store).probe(chunk)
        assert probe.missing == [0, 1, 2, 3]
        assert store.stats().corrupt == 1

    def test_corrupt_index_recovers_committed_objects(self, tmp_path):
        # The index is a cache of the object directory, not the source
        # of truth: losing it must not strand the committed objects.
        chunk = self._populated(tmp_path)
        (index,) = tmp_path.glob("sweeps/*/index.json")
        index.write_text("ni!")
        store = ResultStore(tmp_path)
        probe = _session(store).probe(chunk)
        assert probe.complete
        assert store.stats().corrupt == 1
        assert store.stats().recovered_objects == 1  # one 4-point chunk object

    def test_missing_index_recovers_committed_objects(self, tmp_path):
        chunk = self._populated(tmp_path)
        (index,) = tmp_path.glob("sweeps/*/index.json")
        index.unlink()
        store = ResultStore(tmp_path)
        probe = _session(store).probe(chunk)
        assert probe.complete
        assert store.stats().recovered_objects == 1  # one 4-point chunk object


class TestMemoryTier:
    def test_lru_bound_counts_evictions(self, tmp_path):
        store = ResultStore(tmp_path, max_memory_entries=1)
        session = _session(store)
        for start in (0, 10, 20):
            chunk = _chunk(2, offset=start)
            session.put(chunk, _outcomes(chunk))
        assert store.stats().memory_evictions == 2

    def test_zero_bound_disables_memory_tier(self, tmp_path):
        store = ResultStore(tmp_path, max_memory_entries=0)
        session = _session(store)
        chunk = _chunk(2)
        session.put(chunk, _outcomes(chunk))
        probe = session.probe(chunk)
        assert probe.complete
        assert probe.disk_points == 2  # served from disk even in-process

    def test_stats_reset_keeps_contents(self, tmp_path):
        store = ResultStore(tmp_path)
        session = _session(store)
        chunk = _chunk(2)
        session.put(chunk, _outcomes(chunk))
        store.reset()
        assert store.stats().lookups == 0
        assert session.probe(chunk).complete  # memory tier survived


class TestSegments:
    FP = {"sampler": "test", "seed": 7}

    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        codes = np.array([0, 1, 2, 3], dtype=np.int8)
        state = {"bit_generator": "PCG64", "state": {"state": 1, "inc": 2}}
        store.save_segment(self.FP, 0, 4, codes, state)
        fresh = ResultStore(tmp_path)
        loaded = fresh.load_segment(self.FP, 0, 4)
        assert loaded is not None
        got_codes, got_state = loaded
        assert np.array_equal(got_codes, codes)
        assert got_state == state
        assert fresh.stats().disk_hits == 4

    def test_wrong_position_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save_segment(self.FP, 0, 4, np.zeros(4, dtype=np.int8), {"s": 1})
        fresh = ResultStore(tmp_path)
        assert fresh.load_segment(self.FP, 4, 4) is None
        assert fresh.load_segment(self.FP, 0, 8) is None
        assert fresh.load_segment({"other": True}, 0, 4) is None
        assert fresh.stats().misses == 16

    def test_corrupt_segment_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save_segment(self.FP, 0, 4, np.zeros(4, dtype=np.int8), {"s": 1})
        (segment,) = tmp_path.glob("mc/*/0-4.json")
        segment.write_text("}{")
        fresh = ResultStore(tmp_path)
        assert fresh.load_segment(self.FP, 0, 4) is None
        assert fresh.stats().corrupt == 1


class TestMaintenance:
    def _populate(self, tmp_path) -> ResultStore:
        store = ResultStore(tmp_path)
        session = _session(store)
        chunk = _chunk(4)
        session.put(chunk, _outcomes(chunk))
        session.flush()
        store.save_segment(
            {"sampler": "x"}, 0, 3, np.zeros(3, dtype=np.int8), {"s": 1}
        )
        return store

    def test_ls_and_stat(self, tmp_path):
        store = self._populate(tmp_path)
        rows = store.ls()
        assert {row["kind"] for row in rows} == {"sweep", "mc"}
        info = store.stat()
        assert info["fingerprints"] == 2
        assert info["sweep_fingerprints"] == 1
        assert info["mc_fingerprints"] == 1
        assert info["bytes"] > 0

    def test_ls_on_missing_dir_is_empty(self, tmp_path):
        assert ResultStore(tmp_path / "absent").ls() == []

    def test_gc_removes_tmp_litter_and_orphans(self, tmp_path):
        store = self._populate(tmp_path)
        (sweep_dir,) = (tmp_path / "sweeps").glob("*")
        (sweep_dir / "objects" / "index.json.tmp.999").write_text("litter")
        orphan = sweep_dir / "objects" / ("0" * 64 + ".json")
        orphan.write_text("{}")
        report = store.gc()
        assert report["removed_tmp"] == 1
        assert report["removed_orphans"] == 1
        assert not orphan.exists()

    def test_gc_refuses_foreign_directory(self, tmp_path):
        foreign = tmp_path / "foreign"
        foreign.mkdir()
        (foreign / "data.txt").write_text("keep me")
        store = ResultStore(tmp_path / "elsewhere")
        store.root = foreign  # dodge the init guard; gc has its own
        with pytest.raises(ValidationError, match="refusing to gc"):
            store.gc()
        assert (foreign / "data.txt").exists()

    def test_gc_max_bytes_evicts_oldest_first_without_leaks(self, tmp_path):
        import os
        import time as time_module

        store = self._populate(tmp_path)
        (sweep_dir,) = (tmp_path / "sweeps").glob("*")
        (mc_dir,) = (tmp_path / "mc").glob("*")
        # Make the sweep fingerprint the older of the two.
        past = time_module.time() - 3600
        for path in [sweep_dir, *sweep_dir.rglob("*")]:
            os.utime(path, (past, past))
        report = store.gc(max_bytes=1)
        assert report["evicted_fingerprints"][0].startswith("sweeps/")
        assert not sweep_dir.exists()
        assert not mc_dir.exists()
        assert report["freed_bytes"] > 0
        # Hygiene: only the marker survives, and the store still works.
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert [p.name for p in leftovers] == [MARKER_NAME]
        session = _session(store)
        chunk = _chunk(2)
        session.put(chunk, _outcomes(chunk))
        assert session.probe(chunk).complete

    def test_gc_under_budget_evicts_nothing(self, tmp_path):
        store = self._populate(tmp_path)
        report = store.gc(max_bytes=10**9)
        assert report["evicted_fingerprints"] == []
        assert store.ls()

    def test_gc_empty_store_is_a_noop(self, tmp_path):
        report = ResultStore(tmp_path / "absent").gc(max_bytes=1)
        assert report["freed_bytes"] == 0


class TestChunkProbe:
    def test_complete_and_hit_points(self):
        probe = ChunkProbe(
            keys=["a", "b"],
            chunk_hash="h",
            outcomes=[object(), object()],
            missing=[],
            memory_points=1,
            disk_points=1,
        )
        assert probe.complete
        assert probe.hit_points == 2
