"""Store-backed sweeps: warm reuse, delta stitching, composition with
checkpoints/workers, and the Monte-Carlo segment tier — all bit-exact."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design import DesignPoint
from repro.core.scenario import BALANCED, EMBODIED_DOMINATED
from repro.dse.batch import BatchExplorer
from repro.dse.factories import SymmetricMulticoreFactory
from repro.dse.grid import ParameterGrid, linear_range
from repro.dse.montecarlo import sample_measurement_noise, sample_verdicts
from repro.dse.store import ResultStore

BASELINE = DesignPoint.baseline("1-BCE single core")
GRID = ParameterGrid(
    {"cores": [float(c) for c in range(1, 17)], "f": linear_range(0.5, 0.99, 8)}
)  # 128 points


def scalar_factory(params):
    from repro.amdahl.symmetric import SymmetricMulticore

    return SymmetricMulticore(
        cores=params["cores"], parallel_fraction=params["f"]
    ).design_point()


def _explorer(chunk_size: int = 32, workers: int = 0, factory=None):
    return BatchExplorer(
        factory=factory if factory is not None else SymmetricMulticoreFactory(),
        baseline=BASELINE,
        weight=EMBODIED_DOMINATED,
        chunk_size=chunk_size,
        workers=workers,
    )


def _assert_bit_exact(a, b):
    assert a.designs == b.designs
    assert a.perf.tobytes() == b.perf.tobytes()
    assert a.ncf_fixed_work.tobytes() == b.ncf_fixed_work.tobytes()
    assert a.ncf_fixed_time.tobytes() == b.ncf_fixed_time.tobytes()
    assert a.category_counts() == b.category_counts()


class TestWarmResweep:
    def test_vector_warm_zero_fresh_bit_exact(self, tmp_path):
        cold_explorer = _explorer()
        cold = cold_explorer.explore_arrays(GRID, store=ResultStore(tmp_path))
        assert cold_explorer.last_sweep.fresh_points == len(GRID)
        assert cold_explorer.last_sweep.store_points == 0

        warm_explorer = _explorer()
        warm = warm_explorer.explore_arrays(GRID, store=ResultStore(tmp_path))
        engine = warm_explorer.last_sweep
        assert engine.store_used
        assert engine.fresh_points == 0
        assert engine.memo_points == 0
        assert engine.store_points == len(GRID)
        assert engine.store_disk_points == len(GRID)  # fresh process: disk
        assert engine.store_reuse_ratio == 1.0
        _assert_bit_exact(warm, cold)

    def test_scalar_factory_path(self, tmp_path):
        cold = _explorer(factory=scalar_factory).explore_arrays(
            GRID, store=ResultStore(tmp_path)
        )
        warm_explorer = _explorer(factory=scalar_factory)
        warm = warm_explorer.explore_arrays(GRID, store=ResultStore(tmp_path))
        assert warm_explorer.last_sweep.fresh_points == 0
        _assert_bit_exact(warm, cold)

    def test_cross_chunk_size_readers(self, tmp_path):
        cold = _explorer(chunk_size=100).explore_arrays(
            GRID, store=ResultStore(tmp_path)
        )
        reader = _explorer(chunk_size=17)
        warm = reader.explore_arrays(GRID, store=ResultStore(tmp_path))
        assert reader.last_sweep.fresh_points == 0
        assert reader.last_sweep.store_points == len(GRID)
        _assert_bit_exact(warm, cold)

    def test_parallel_workers_warm(self, tmp_path):
        cold = _explorer().explore_arrays(GRID, store=ResultStore(tmp_path))
        par = _explorer(workers=2)
        warm = par.explore_arrays(GRID, store=ResultStore(tmp_path))
        assert par.last_sweep.fresh_points == 0
        _assert_bit_exact(warm, cold)

    def test_store_path_accepted_directly(self, tmp_path):
        cold = _explorer().explore_arrays(GRID, store=tmp_path / "s")
        warm_explorer = _explorer()
        warm = warm_explorer.explore_arrays(GRID, store=tmp_path / "s")
        assert warm_explorer.last_sweep.fresh_points == 0
        _assert_bit_exact(warm, cold)

    def test_no_store_means_no_store_stats(self):
        explorer = _explorer()
        explorer.explore_arrays(GRID)
        engine = explorer.last_sweep
        assert not engine.store_used
        assert "store reuse" not in engine.summary()
        assert "store_points" not in engine.as_dict()


class TestDeltaSweep:
    def _overlapping_grid(self):
        fractions = linear_range(0.5, 0.99, 8)[4:] + linear_range(0.1, 0.4, 4)
        return ParameterGrid(
            {"cores": [float(c) for c in range(1, 17)], "f": fractions}
        )

    def test_delta_evaluates_only_new_points(self, tmp_path):
        _explorer().explore_arrays(GRID, store=ResultStore(tmp_path))
        delta_grid = self._overlapping_grid()
        delta_explorer = _explorer()
        delta = delta_explorer.explore_arrays(
            delta_grid, store=ResultStore(tmp_path)
        )
        engine = delta_explorer.last_sweep
        expected_fresh = 16 * 4  # only the new fractions
        assert engine.fresh_points == expected_fresh
        assert engine.store_points == len(delta_grid) - expected_fresh
        assert engine.delta_chunks > 0
        cold = _explorer().explore_arrays(delta_grid)
        _assert_bit_exact(delta, cold)

    def test_delta_with_workers(self, tmp_path):
        _explorer().explore_arrays(GRID, store=ResultStore(tmp_path))
        delta_grid = self._overlapping_grid()
        par = _explorer(workers=2)
        delta = par.explore_arrays(delta_grid, store=ResultStore(tmp_path))
        assert par.last_sweep.fresh_points == 16 * 4
        cold = _explorer().explore_arrays(delta_grid)
        _assert_bit_exact(delta, cold)

    def test_second_delta_is_fully_warm(self, tmp_path):
        """The stitched chunks were written back: re-running the delta
        grid is a 100% store hit."""
        _explorer().explore_arrays(GRID, store=ResultStore(tmp_path))
        delta_grid = self._overlapping_grid()
        _explorer().explore_arrays(delta_grid, store=ResultStore(tmp_path))
        rerun = _explorer()
        rerun.explore_arrays(delta_grid, store=ResultStore(tmp_path))
        assert rerun.last_sweep.fresh_points == 0
        assert rerun.last_sweep.store_points == len(delta_grid)


class TestComposition:
    def test_checkpoint_bytes_identical_cold_vs_warm(self, tmp_path):
        cold_ck = tmp_path / "cold.ckpt"
        warm_ck = tmp_path / "warm.ckpt"
        store_dir = tmp_path / "store"
        _explorer().explore_arrays(
            GRID, checkpoint=cold_ck, store=ResultStore(store_dir)
        )
        warm_explorer = _explorer()
        warm_explorer.explore_arrays(
            GRID, checkpoint=warm_ck, store=ResultStore(store_dir)
        )
        assert warm_explorer.last_sweep.fresh_points == 0
        assert cold_ck.read_bytes() == warm_ck.read_bytes()

    def test_resume_and_store_compose(self, tmp_path):
        """Chunks restored from a checkpoint are not double-counted as
        store hits, and the resumed run stays bit-exact."""
        ck = tmp_path / "sweep.ckpt"
        store_dir = tmp_path / "store"
        cold = _explorer().explore_arrays(
            GRID, checkpoint=ck, store=ResultStore(store_dir)
        )
        resumed_explorer = _explorer()
        resumed = resumed_explorer.explore_arrays(
            GRID, checkpoint=ck, resume=True, store=ResultStore(store_dir)
        )
        engine = resumed_explorer.last_sweep
        assert engine.fresh_points == 0
        assert engine.store_points == 0  # the checkpoint got there first
        _assert_bit_exact(resumed, cold)

    def test_corrupt_object_recomputes_bit_exact(self, tmp_path):
        cold = _explorer().explore_arrays(GRID, store=ResultStore(tmp_path))
        victim = sorted(tmp_path.glob("sweeps/*/objects/*.json"))[0]
        victim.write_text("garbage")
        store = ResultStore(tmp_path)
        warm_explorer = _explorer()
        warm = warm_explorer.explore_arrays(GRID, store=store)
        assert store.stats().corrupt >= 1
        assert warm_explorer.last_sweep.fresh_points > 0  # recomputed
        _assert_bit_exact(warm, cold)
        # The rewrite healed the store: next sweep is fully warm again.
        healed = _explorer()
        healed.explore_arrays(GRID, store=ResultStore(tmp_path))
        assert healed.last_sweep.fresh_points == 0


class TestStatsAndObservability:
    def test_summary_and_as_dict_report_provenance(self, tmp_path):
        _explorer().explore_arrays(GRID, store=ResultStore(tmp_path))
        warm_explorer = _explorer()
        warm_explorer.explore_arrays(GRID, store=ResultStore(tmp_path))
        engine = warm_explorer.last_sweep
        summary = engine.summary()
        assert "store reuse: 100.0%" in summary
        assert f"{len(GRID)} pts disk" in summary
        payload = engine.as_dict()
        assert payload["memo_points"] == 0
        assert payload["fresh_points"] == 0
        assert payload["store_points"] == len(GRID)
        assert payload["store_reuse_ratio"] == 1.0

    def test_store_metrics_counters(self, tmp_path):
        from repro.obs import metrics

        metrics.reset()
        metrics.enable()
        try:
            registry = metrics.get_registry()
            _explorer().explore_arrays(GRID, store=ResultStore(tmp_path))
            assert (
                registry.counter("focal_store_misses_total").value == len(GRID)
            )
            _explorer().explore_arrays(GRID, store=ResultStore(tmp_path))
            assert (
                registry.counter(
                    "focal_store_hits_total", labels={"tier": "disk"}
                ).value
                == len(GRID)
            )
            assert (
                registry.counter("focal_store_sweep_points_total").value
                == len(GRID)
            )
            assert registry.counter("focal_store_bytes_written_total").value > 0
        finally:
            metrics.reset()


EDGE_DESIGN = DesignPoint("edge", area=1.1, perf=1.0, power=0.6)


class TestMonteCarloStore:
    def test_verdict_segments_reused_bit_exact(self, tmp_path):
        reference = sample_verdicts(
            EDGE_DESIGN, BASELINE, BALANCED, samples=5000, seed=3
        )
        cold = sample_verdicts(
            EDGE_DESIGN,
            BASELINE,
            BALANCED,
            samples=5000,
            seed=3,
            store=ResultStore(tmp_path),
        )
        warm_store = ResultStore(tmp_path)
        warm = sample_verdicts(
            EDGE_DESIGN,
            BASELINE,
            BALANCED,
            samples=5000,
            seed=3,
            store=warm_store,
        )
        assert cold == reference
        assert warm == reference
        stats = warm_store.stats()
        assert stats.disk_hits == 5000
        assert stats.misses == 0

    def test_prefix_reuse_with_more_samples(self, tmp_path):
        sample_verdicts(
            EDGE_DESIGN,
            BASELINE,
            BALANCED,
            samples=8192,
            seed=3,
            checkpoint_every=2048,
            store=ResultStore(tmp_path),
        )
        bigger_store = ResultStore(tmp_path)
        bigger = sample_verdicts(
            EDGE_DESIGN,
            BASELINE,
            BALANCED,
            samples=12000,
            seed=3,
            checkpoint_every=2048,
            store=bigger_store,
        )
        reference = sample_verdicts(
            EDGE_DESIGN,
            BASELINE,
            BALANCED,
            samples=12000,
            seed=3,
            checkpoint_every=2048,
        )
        assert bigger == reference
        stats = bigger_store.stats()
        assert stats.hits == 8192  # the shared prefix
        assert stats.misses == 12000 - 8192

    def test_different_checkpoint_every_recomputes(self, tmp_path):
        first = sample_verdicts(
            EDGE_DESIGN,
            BASELINE,
            BALANCED,
            samples=4096,
            seed=3,
            checkpoint_every=2048,
            store=ResultStore(tmp_path),
        )
        other_store = ResultStore(tmp_path)
        second = sample_verdicts(
            EDGE_DESIGN,
            BASELINE,
            BALANCED,
            samples=4096,
            seed=3,
            checkpoint_every=1024,
            store=other_store,
        )
        assert second == first  # conservative: recompute, same answer
        assert other_store.stats().hits == 0

    def test_different_seed_never_aliases(self, tmp_path):
        sample_verdicts(
            EDGE_DESIGN, BASELINE, BALANCED, samples=4000, seed=3,
            store=ResultStore(tmp_path),
        )
        other_store = ResultStore(tmp_path)
        sample_verdicts(
            EDGE_DESIGN, BASELINE, BALANCED, samples=4000, seed=4,
            store=other_store,
        )
        assert other_store.stats().hits == 0

    def test_noise_sampler_reuse(self, tmp_path):
        reference = sample_measurement_noise(
            EDGE_DESIGN, BASELINE, 0.5, samples=4000, seed=9
        )
        sample_measurement_noise(
            EDGE_DESIGN, BASELINE, 0.5, samples=4000, seed=9,
            store=ResultStore(tmp_path),
        )
        warm_store = ResultStore(tmp_path)
        warm = sample_measurement_noise(
            EDGE_DESIGN, BASELINE, 0.5, samples=4000, seed=9, store=warm_store,
        )
        assert warm == reference
        assert warm_store.stats().misses == 0
        assert warm_store.stats().disk_hits == 4000

    def test_checkpoint_and_store_compose(self, tmp_path):
        ck = tmp_path / "mc.ckpt"
        store_dir = tmp_path / "store"
        first = sample_verdicts(
            EDGE_DESIGN,
            BASELINE,
            BALANCED,
            samples=6000,
            seed=5,
            checkpoint=ck,
            checkpoint_every=2048,
            store=ResultStore(store_dir),
        )
        resumed = sample_verdicts(
            EDGE_DESIGN,
            BASELINE,
            BALANCED,
            samples=6000,
            seed=5,
            checkpoint=ck,
            resume=True,
            checkpoint_every=2048,
            store=ResultStore(store_dir),
        )
        assert resumed == first
