"""The columnar cold path must be invisible in the results: byte-
identical ``explore`` output (ordering, skips, values), identical
cache contents, identical category counts — with and without a
:class:`~repro.dse.batch.VectorFactory`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.amdahl.asymmetric import AsymmetricMulticore
from repro.amdahl.symmetric import SymmetricMulticore
from repro.core.design import DesignPoint
from repro.core.errors import ConfigurationError, ValidationError
from repro.core.scenario import EMBODIED_DOMINATED
from repro.dse.batch import (
    BatchExplorer,
    DesignArrays,
    FactoryCache,
    SweepEngineStats,
    is_vector_factory,
)
from repro.dse.explorer import Explorer
from repro.dse.factories import (
    AsymmetricMulticoreFactory,
    DVFSOperatingPointFactory,
    SymmetricMulticoreFactory,
)
from repro.dse.grid import ParameterGrid, linear_range
from repro.obs import metrics, trace


@pytest.fixture(autouse=True)
def clean_obs():
    trace.reset()
    metrics.reset()
    yield
    trace.reset()
    metrics.reset()


def multicore_factory(params):
    return SymmetricMulticore(
        cores=params["cores"], parallel_fraction=params["f"]
    ).design_point()


def asymmetric_scalar_factory(params):
    return AsymmetricMulticore(
        total_bces=params["n"], big_core_bces=params["m"], parallel_fraction=0.9
    ).design_point()


GRID = ParameterGrid({"cores": [1, 2, 4, 8, 16], "f": linear_range(0.5, 0.99, 7)})
#: n <= m corners raise DomainError scalar-side, are masked vector-side.
ASYM_GRID = ParameterGrid({"n": [2, 3, 4, 8, 16], "m": [1, 4, 8]})


def _explorer(factory, baseline, **kwargs) -> BatchExplorer:
    return BatchExplorer(
        factory=factory, baseline=baseline, weight=EMBODIED_DOMINATED, **kwargs
    )


class TestProtocol:
    def test_stock_factories_are_vector_factories(self):
        assert is_vector_factory(SymmetricMulticoreFactory())
        assert is_vector_factory(AsymmetricMulticoreFactory())
        assert is_vector_factory(
            DVFSOperatingPointFactory(design=DesignPoint.baseline("b"))
        )

    def test_plain_callables_are_not(self):
        assert not is_vector_factory(multicore_factory)

    def test_design_arrays_validates_shapes(self):
        ones = np.ones(3)
        with pytest.raises(ValidationError):
            DesignArrays(area=ones, perf=np.ones(4), power=ones, valid=ones > 0)
        with pytest.raises(ValidationError):
            DesignArrays(
                area=np.ones((2, 2)),
                perf=np.ones((2, 2)),
                power=np.ones((2, 2)),
                valid=np.ones((2, 2)) > 0,
            )
        arrays = DesignArrays(area=ones, perf=ones, power=ones, valid=ones > 0)
        assert len(arrays) == 3


class TestByteIdenticalExplore:
    def test_symmetric_matches_scalar_and_plain(self, baseline):
        scalar = Explorer(
            factory=multicore_factory, baseline=baseline, weight=EMBODIED_DOMINATED
        ).explore(GRID)
        plain = _explorer(multicore_factory, baseline)
        vector = _explorer(SymmetricMulticoreFactory(), baseline)
        assert list(vector.explore(GRID)) == list(plain.explore(GRID)) == list(scalar)

    def test_cache_contents_identical_after_cold_sweep(self, baseline):
        plain = _explorer(multicore_factory, baseline)
        vector = _explorer(SymmetricMulticoreFactory(), baseline)
        plain.explore(GRID)
        vector.explore(GRID)
        assert vector.cache.stats() == plain.cache.stats()
        assert dict(vector.cache._entries) == dict(plain.cache._entries)

    def test_asymmetric_skips_identical(self, baseline):
        scalar = Explorer(
            factory=asymmetric_scalar_factory,
            baseline=baseline,
            weight=EMBODIED_DOMINATED,
        ).explore(ASYM_GRID)
        vector = _explorer(
            AsymmetricMulticoreFactory(parallel_fraction=0.9), baseline
        )
        results = vector.explore(ASYM_GRID)
        assert list(results) == list(scalar)
        # The invalid corners really are skipped, not zero-filled.
        assert 0 < len(results) < len(ASYM_GRID)

    def test_chunked_vector_sweep_identical(self, baseline):
        whole = _explorer(SymmetricMulticoreFactory(), baseline).explore(GRID)
        chunked = _explorer(
            SymmetricMulticoreFactory(), baseline, chunk_size=3
        ).explore(GRID)
        assert list(chunked) == list(whole)

    def test_batch_arrays_length_mismatch_is_configuration_error(self, baseline):
        class Broken(SymmetricMulticoreFactory):
            def batch_arrays(self, columns):
                arrays = super().batch_arrays(columns)
                return DesignArrays(
                    area=arrays.area[:-1],
                    perf=arrays.perf[:-1],
                    power=arrays.power[:-1],
                    valid=arrays.valid[:-1],
                )

        with pytest.raises(ConfigurationError):
            _explorer(Broken(), baseline).explore(GRID)


class TestCountCategories:
    def test_vector_counts_match_scalar(self, baseline):
        vector = _explorer(SymmetricMulticoreFactory(), baseline)
        plain = _explorer(multicore_factory, baseline)
        assert vector.count_categories(GRID) == plain.count_categories(GRID)

    def test_asymmetric_counts_match_scalar(self, baseline):
        vector = _explorer(AsymmetricMulticoreFactory(parallel_fraction=0.9), baseline)
        plain = _explorer(asymmetric_scalar_factory, baseline)
        assert vector.count_categories(ASYM_GRID) == plain.count_categories(ASYM_GRID)

    def test_columnar_count_leaves_cache_cold(self, baseline):
        # The pure columnar histogram never materializes DesignPoints,
        # so it must not (and cannot) populate the factory cache.
        vector = _explorer(SymmetricMulticoreFactory(), baseline)
        vector.count_categories(GRID)
        assert len(vector.cache) == 0

    def test_warm_cache_count_falls_back_to_scalar(self, baseline):
        vector = _explorer(SymmetricMulticoreFactory(), baseline)
        vector.explore(GRID)  # warms the cache
        assert vector.last_sweep.mode == "columnar"
        counts = vector.count_categories(GRID)
        assert vector.last_sweep.mode == "scalar"
        assert counts == _explorer(multicore_factory, baseline).count_categories(GRID)


class TestSweepEngineStats:
    def test_vector_cold_sweep_stats(self, baseline):
        vector = _explorer(SymmetricMulticoreFactory(), baseline)
        assert vector.last_sweep is None
        vector.explore(GRID)
        stats = vector.last_sweep
        assert stats.mode == "columnar"
        assert stats.grid_points == len(GRID)
        assert stats.vector_points == len(GRID)
        assert stats.fallback_points == 0
        assert stats.evals_per_s > 0
        assert "columnar path" in stats.summary()
        assert f"{len(GRID)} pts" in stats.summary()

    def test_fallback_accounting_on_warm_cache(self, baseline):
        vector = _explorer(SymmetricMulticoreFactory(), baseline)
        vector.explore(GRID)
        vector.explore(GRID)  # warm: scalar path although vector-capable
        stats = vector.last_sweep
        assert stats.mode == "scalar"
        assert stats.fallback_points == len(GRID)
        assert "scalar-fallback" in stats.summary()

    def test_plain_factory_has_no_fallback(self, baseline):
        plain = _explorer(multicore_factory, baseline)
        plain.explore(GRID)
        assert plain.last_sweep.mode == "scalar"
        assert plain.last_sweep.fallback_points == 0

    def test_workers_run_parallel_columnar(self, baseline):
        vector = _explorer(
            SymmetricMulticoreFactory(), baseline, workers=2, chunk_size=9
        )
        results = vector.explore(GRID)
        stats = vector.last_sweep
        assert stats.mode == "parallel-columnar"
        assert stats.workers == 2
        assert stats.shards > 0
        assert stats.shard_points > 0 and stats.shard_points % 9 == 0
        assert "parallel-columnar path" in stats.summary()
        assert "workers" in stats.summary()
        payload = stats.as_dict()
        assert payload["shards"] == stats.shards
        assert payload["shm_bytes"] == stats.shm_bytes
        assert list(results) == list(
            _explorer(SymmetricMulticoreFactory(), baseline).explore(GRID)
        )

    def test_warm_cache_pool_sweep_is_scalar_pool(self, baseline):
        warm = _explorer(SymmetricMulticoreFactory(), baseline)
        warm.explore(GRID)
        pooled = _explorer(
            SymmetricMulticoreFactory(), baseline, workers=2, cache=warm.cache
        )
        results = pooled.explore(GRID)
        assert pooled.last_sweep.mode == "scalar-pool"
        assert list(results) == list(
            _explorer(SymmetricMulticoreFactory(), baseline).explore(GRID)
        )

    def test_as_dict_round_trips(self, baseline):
        vector = _explorer(SymmetricMulticoreFactory(), baseline)
        vector.explore(GRID)
        payload = vector.last_sweep.as_dict()
        assert payload["mode"] == "columnar"
        assert payload["grid_points"] == len(GRID)
        assert isinstance(payload["evals_per_s"], float)


class TestObservability:
    def _metric(self, name):
        for entry in metrics.get_registry().snapshot():
            if entry["name"] == name:
                return entry
        return None

    def test_vector_metrics_emitted(self, baseline):
        metrics.enable()
        _explorer(SymmetricMulticoreFactory(), baseline).explore(GRID)
        evals = self._metric("focal_vector_evaluations_total")
        rate = self._metric("focal_vector_evals_per_s")
        assert evals is not None and evals["value"] == len(GRID)
        assert rate is not None and rate["value"] > 0

    def test_fallback_counter_emitted(self, baseline):
        metrics.enable()
        explorer = _explorer(SymmetricMulticoreFactory(), baseline)
        explorer.explore(GRID)
        explorer.explore(GRID)  # warm -> scalar fallback
        fallback = self._metric("focal_vector_fallback_total")
        assert fallback is not None and fallback["value"] == len(GRID)

    def test_metrics_do_not_change_results(self, baseline):
        plain_results = _explorer(SymmetricMulticoreFactory(), baseline).explore(GRID)
        metrics.enable()
        trace.enable()
        traced_results = _explorer(SymmetricMulticoreFactory(), baseline).explore(GRID)
        assert list(traced_results) == list(plain_results)
