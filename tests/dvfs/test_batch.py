"""Columnar DVFS kernels must be bit-exact with the scalar scaling
laws and ``scale_design``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.design import DesignPoint
from repro.core.errors import ValidationError
from repro.dvfs.batch import (
    dynamic_energy_factors,
    dynamic_power_factors,
    leakage_power_factors,
    performance_factors,
    scale_design_arrays,
)
from repro.dvfs.laws import (
    dynamic_energy_factor,
    dynamic_power_factor,
    leakage_power_factor,
    performance_factor,
)
from repro.dvfs.operating_point import DVFSConfig, scale_design

MULTIPLIERS = np.asarray([0.25, 0.5, 0.8, 1.0, 1.3, 2.0])


class TestScalingLawKernels:
    def test_factors_bit_exact(self):
        cubed = dynamic_power_factors(MULTIPLIERS)
        squared = dynamic_energy_factors(MULTIPLIERS)
        linear_p = leakage_power_factors(MULTIPLIERS)
        linear_s = performance_factors(MULTIPLIERS)
        for i, s in enumerate(MULTIPLIERS):
            assert cubed[i] == dynamic_power_factor(float(s))
            assert squared[i] == dynamic_energy_factor(float(s))
            assert linear_p[i] == leakage_power_factor(float(s))
            assert linear_s[i] == performance_factor(float(s))

    def test_rejects_non_positive_multipliers(self):
        with pytest.raises(ValidationError):
            dynamic_power_factors([1.0, 0.0])


class TestScaleDesignArrays:
    @pytest.fixture
    def design(self):
        return DesignPoint("chip", area=20.0, perf=2.0, power=3.0)

    @pytest.mark.parametrize(
        "config",
        [DVFSConfig(), DVFSConfig(leakage_fraction=0.0), DVFSConfig(leakage_fraction=0.4)],
        ids=["default", "fully-dynamic", "leaky"],
    )
    @pytest.mark.parametrize("regulator", [True, False], ids=["reg", "no-reg"])
    def test_bit_exact_with_scale_design(self, design, config, regulator):
        areas, perfs, powers = scale_design_arrays(
            design, MULTIPLIERS, config, include_regulator_area=regulator
        )
        for i, s in enumerate(MULTIPLIERS):
            point = scale_design(
                design, float(s), config, include_regulator_area=regulator
            )
            assert areas[i] == point.area
            assert perfs[i] == point.perf
            assert powers[i] == point.power

    def test_returns_float64_copies(self, design):
        areas, perfs, powers = scale_design_arrays(design, MULTIPLIERS)
        for arr in (areas, perfs, powers):
            assert arr.dtype == np.float64
            assert arr.shape == MULTIPLIERS.shape
