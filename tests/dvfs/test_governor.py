"""Unit tests for the energy-minimal DVFS governor."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.dvfs.governor import (
    EnergyModel,
    energy_for_multiplier,
    optimal_multiplier,
    race_vs_pace,
)


class TestEnergyFunction:
    def test_no_slack_full_speed(self):
        """Deadline 1.0: only s = 1 meets it; energy = active power."""
        model = EnergyModel(leakage_fraction=0.1, idle_leakage=0.05)
        assert energy_for_multiplier(1.0, 1.0, model) == pytest.approx(1.0)

    def test_pure_dynamic_pacing_is_quadratic(self):
        """No leakage anywhere: E(s) = s^2 for the busy phase only."""
        model = EnergyModel(leakage_fraction=0.0, idle_leakage=0.0)
        assert energy_for_multiplier(0.5, 2.0, model) == pytest.approx(0.25)

    def test_idle_leakage_charged_for_slack(self):
        model = EnergyModel(leakage_fraction=0.0, idle_leakage=0.2)
        # s = 1 with deadline 2: busy 1 at power 1, idle 1 at 0.2.
        assert energy_for_multiplier(1.0, 2.0, model) == pytest.approx(1.2)

    def test_missing_deadline_rejected(self):
        with pytest.raises(ValidationError, match="deadline"):
            energy_for_multiplier(0.4, 2.0)

    def test_rejects_sub_unit_deadline(self):
        with pytest.raises(ValidationError):
            energy_for_multiplier(1.0, 0.5)


class TestOptimalMultiplier:
    def test_no_leakage_pace_to_deadline(self):
        """Without any leakage the slowest feasible point wins."""
        model = EnergyModel(leakage_fraction=0.0, idle_leakage=0.0)
        assert optimal_multiplier(2.0, model) == pytest.approx(0.5, abs=1e-6)

    def test_heavy_idle_leakage_favors_racing(self):
        """If idling costs as much as running, race at full speed."""
        model = EnergyModel(leakage_fraction=0.0, idle_leakage=1.0)
        # Racing then idling at power 1 equals always-on at s-dependent
        # dynamic power; the optimum is pacing? Check energies directly:
        # pacing at 0.5: 0.25*2 = 0.5 < racing 1*1 + 1*1 = 2. Idle
        # leakage equal to max power still favors pacing for dynamic-
        # dominated cores; use active leakage to force racing instead.
        assert optimal_multiplier(2.0, model) == pytest.approx(0.5, abs=1e-4)

    def test_interior_optimum_with_leakage(self):
        """With a leakage floor the optimum sits strictly inside
        (1/deadline, 1)."""
        model = EnergyModel(leakage_fraction=0.3, idle_leakage=0.0)
        best = optimal_multiplier(4.0, model)
        assert 0.25 < best < 1.0

    def test_optimum_beats_both_policies(self):
        model = EnergyModel(leakage_fraction=0.2, idle_leakage=0.1)
        result = race_vs_pace(3.0, model)
        assert result.optimal_energy <= result.race_energy + 1e-9
        assert result.optimal_energy <= result.pace_energy + 1e-9

    def test_infeasible_deadline_rejected(self):
        with pytest.raises(ValidationError):
            optimal_multiplier(1.5, max_multiplier=0.5)

    def test_turbo_allowed_when_requested(self):
        """max_multiplier > 1 lets the search consider boosting, which
        never helps energy (cubic power) — optimum stays <= 1."""
        best = optimal_multiplier(2.0, max_multiplier=1.5)
        assert best <= 1.0 + 1e-6


class TestRaceVsPace:
    def test_policies_meet_deadline_boundaries(self):
        result = race_vs_pace(2.0)
        assert result.race_energy == pytest.approx(
            energy_for_multiplier(1.0, 2.0)
        )
        assert result.pace_energy == pytest.approx(
            energy_for_multiplier(0.5, 2.0)
        )

    def test_pacing_wins_for_dynamic_dominated_core(self):
        model = EnergyModel(leakage_fraction=0.05, idle_leakage=0.05)
        assert race_vs_pace(2.0, model).best_policy == "pace"

    def test_racing_wins_when_low_speed_is_inefficient(self):
        """A core that is almost all leakage: running longer at low
        speed burns linearly while racing finishes fast and drops to a
        cheap idle state."""
        model = EnergyModel(leakage_fraction=1.0, idle_leakage=0.0)
        assert race_vs_pace(4.0, model).best_policy == "race-to-idle"
