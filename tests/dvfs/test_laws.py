"""Unit tests for the DVFS scaling laws."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.dvfs.laws import (
    dynamic_energy_factor,
    dynamic_power_factor,
    leakage_power_factor,
    performance_factor,
)


class TestLaws:
    def test_cubic_power(self):
        assert dynamic_power_factor(2.0) == 8.0
        assert dynamic_power_factor(0.5) == 0.125

    def test_quadratic_energy(self):
        assert dynamic_energy_factor(2.0) == 4.0
        assert dynamic_energy_factor(0.5) == 0.25

    def test_linear_leakage(self):
        assert leakage_power_factor(0.7) == 0.7

    def test_linear_performance(self):
        assert performance_factor(1.3) == 1.3

    def test_unity_multiplier_is_identity(self):
        for law in (
            dynamic_power_factor,
            dynamic_energy_factor,
            leakage_power_factor,
            performance_factor,
        ):
            assert law(1.0) == 1.0

    def test_energy_is_power_over_performance(self):
        """P ~ s^3, perf ~ s -> E ~ s^2: the laws are mutually
        consistent."""
        s = 1.37
        assert dynamic_energy_factor(s) == pytest.approx(
            dynamic_power_factor(s) / performance_factor(s)
        )

    @pytest.mark.parametrize(
        "law",
        [dynamic_power_factor, dynamic_energy_factor, leakage_power_factor, performance_factor],
    )
    def test_rejects_non_positive(self, law):
        with pytest.raises(ValidationError):
            law(0.0)
