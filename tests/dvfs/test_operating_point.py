"""Unit tests for DVFS operating points (Finding #14)."""

from __future__ import annotations

import pytest

from repro.core.classify import Sustainability
from repro.core.design import DesignPoint
from repro.core.errors import ValidationError
from repro.dvfs.operating_point import DVFSConfig, classify_downscaling, scale_design


class TestConfig:
    def test_defaults(self):
        config = DVFSConfig()
        assert config.leakage_fraction == 0.1
        assert config.regulator_area_overhead == 0.02

    def test_rejects_bad_leakage(self):
        with pytest.raises(ValidationError):
            DVFSConfig(leakage_fraction=1.5)


class TestScaleDesign:
    def test_fully_dynamic_cubic(self):
        base = DesignPoint.baseline()
        scaled = scale_design(
            base, 0.5, DVFSConfig(leakage_fraction=0.0, regulator_area_overhead=0.0)
        )
        assert scaled.power == pytest.approx(0.125)
        assert scaled.perf == pytest.approx(0.5)
        assert scaled.energy == pytest.approx(0.25)

    def test_leakage_scales_linearly(self):
        base = DesignPoint.baseline()
        scaled = scale_design(
            base, 0.5, DVFSConfig(leakage_fraction=1.0, regulator_area_overhead=0.0)
        )
        assert scaled.power == pytest.approx(0.5)

    def test_mixed_split(self):
        base = DesignPoint.baseline()
        config = DVFSConfig(leakage_fraction=0.3, regulator_area_overhead=0.0)
        scaled = scale_design(base, 0.5, config)
        assert scaled.power == pytest.approx(0.7 * 0.125 + 0.3 * 0.5)

    def test_regulator_area_charged(self):
        base = DesignPoint.baseline()
        scaled = scale_design(base, 0.9)
        assert scaled.area == pytest.approx(1.02)

    def test_regulator_area_skippable(self):
        base = DesignPoint.baseline()
        scaled = scale_design(base, 0.9, include_regulator_area=False)
        assert scaled.area == 1.0

    def test_unit_multiplier_keeps_power(self):
        base = DesignPoint("x", area=2.0, perf=3.0, power=4.0)
        scaled = scale_design(base, 1.0)
        assert scaled.power == pytest.approx(4.0)
        assert scaled.perf == pytest.approx(3.0)

    def test_name_records_multiplier(self):
        assert "0.8" in scale_design(DesignPoint.baseline(), 0.8).name


class TestFinding14:
    @pytest.mark.parametrize("alpha", [0.2, 0.5, 0.8])
    def test_downscaling_strongly_sustainable(self, alpha):
        assert classify_downscaling(alpha) is Sustainability.STRONG

    def test_tiny_downscale_with_huge_regulator_not_sustainable(self):
        """The paper's caveat: DVFS could fail to pay if the area cost
        is not offset — a 1 % downscale against a 20 % regulator."""
        config = DVFSConfig(regulator_area_overhead=0.2)
        assert classify_downscaling(0.9, 0.99, config) is Sustainability.LESS
