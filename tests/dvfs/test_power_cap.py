"""Unit tests for iso-power frequency solving (paper §7)."""

from __future__ import annotations

import math

import pytest

from repro.amdahl.symmetric import SymmetricMulticore
from repro.core.errors import ValidationError
from repro.dvfs.power_cap import capped_frequency_multiplier


class TestBasics:
    def test_budget_equals_power_keeps_nominal(self):
        assert capped_frequency_multiplier(10.0, 10.0, 1.41) == pytest.approx(1.41)

    def test_half_budget_cube_root(self):
        assert capped_frequency_multiplier(2.0, 1.0) == pytest.approx(0.5 ** (1 / 3))

    def test_headroom_raises_multiplier(self):
        assert capped_frequency_multiplier(1.0, 8.0) == pytest.approx(2.0)

    def test_rejects_non_positive_inputs(self):
        with pytest.raises(ValidationError):
            capped_frequency_multiplier(0.0, 1.0)
        with pytest.raises(ValidationError):
            capped_frequency_multiplier(1.0, -1.0)

    def test_cubic_consistency(self):
        """(phi/nominal)^3 * power == budget by construction."""
        phi = capped_frequency_multiplier(3.7, 2.2, 1.41)
        assert (phi / 1.41) ** 3 * 3.7 == pytest.approx(2.2)


class TestPaperCaseStudy:
    """The §7 frequency multipliers fall out of this solver with the
    Woo-Lee power shapes."""

    @staticmethod
    def shape(cores: int) -> float:
        return SymmetricMulticore(cores, 0.75, leakage=0.2).power

    def test_four_cores_full_nominal(self):
        phi = capped_frequency_multiplier(self.shape(4), self.shape(4), math.sqrt(2))
        assert phi == pytest.approx(1.414, abs=0.001)

    def test_eight_cores_paper_value(self):
        phi = capped_frequency_multiplier(self.shape(8), self.shape(4), math.sqrt(2))
        assert phi == pytest.approx(1.24, abs=0.01)

    def test_multiplier_decreases_with_core_count(self):
        phis = [
            capped_frequency_multiplier(self.shape(n), self.shape(4), math.sqrt(2))
            for n in (4, 5, 6, 7, 8)
        ]
        assert phis == sorted(phis, reverse=True)
