"""Unit tests for turbo boosting (Finding #15)."""

from __future__ import annotations

import pytest

from repro.core.classify import Sustainability
from repro.core.design import DesignPoint
from repro.core.errors import ValidationError
from repro.dvfs.turboboost import TurboBoost, boosted_design, classify_turboboost


class TestConfig:
    def test_rejects_non_boosting_multiplier(self):
        with pytest.raises(ValidationError, match="exceed 1"):
            TurboBoost(boost_multiplier=1.0)

    def test_rejects_bad_residency(self):
        with pytest.raises(ValidationError):
            TurboBoost(boost_multiplier=1.2, boost_residency=1.5)


class TestBoostedDesign:
    def test_full_residency_cubic_power(self):
        base = DesignPoint.baseline()
        boosted = boosted_design(
            base, TurboBoost(boost_multiplier=1.2, circuitry_area_overhead=0.0)
        )
        assert boosted.perf == pytest.approx(1.2)
        assert boosted.power == pytest.approx(1.2**3)
        assert boosted.energy == pytest.approx(1.2**2)

    def test_partial_residency_time_weighted(self):
        base = DesignPoint.baseline()
        boost = TurboBoost(
            boost_multiplier=1.5, boost_residency=0.5, circuitry_area_overhead=0.0
        )
        boosted = boosted_design(base, boost)
        assert boosted.perf == pytest.approx(0.5 + 0.5 * 1.5)
        assert boosted.power == pytest.approx(0.5 + 0.5 * 1.5**3)

    def test_area_overhead_charged(self):
        base = DesignPoint.baseline()
        boosted = boosted_design(base, TurboBoost(circuitry_area_overhead=0.03))
        assert boosted.area == pytest.approx(1.03)

    def test_zero_residency_only_costs_area(self):
        base = DesignPoint.baseline()
        boosted = boosted_design(
            base, TurboBoost(boost_multiplier=1.4, boost_residency=0.0)
        )
        assert boosted.perf == pytest.approx(1.0)
        assert boosted.power == pytest.approx(1.0)


class TestFinding15:
    @pytest.mark.parametrize("alpha", [0.2, 0.5, 0.8])
    def test_less_sustainable_everywhere(self, alpha):
        assert classify_turboboost(alpha) is Sustainability.LESS

    def test_energy_rises_despite_performance_gain(self):
        """Boosting buys performance with super-linear energy: energy
        per unit work must increase."""
        base = DesignPoint.baseline()
        boosted = boosted_design(base, TurboBoost(boost_multiplier=1.3))
        assert boosted.energy > base.energy
