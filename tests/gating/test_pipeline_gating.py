"""Unit tests for pipeline gating (Finding #16)."""

from __future__ import annotations

import pytest

from repro.core.classify import Sustainability
from repro.core.scenario import UseScenario
from repro.gating.pipeline_gating import (
    PARIKH_GATING,
    PipelineGatingEffect,
    classify_gating,
    gated_design,
    gating_ncf,
)

FW = UseScenario.FIXED_WORK
FT = UseScenario.FIXED_TIME


class TestParikhNumbers:
    def test_quoted_effect(self):
        assert PARIKH_GATING.perf_factor == pytest.approx(0.934)
        assert PARIKH_GATING.energy_factor == pytest.approx(0.965)
        assert PARIKH_GATING.area_overhead == 0.0

    def test_power_drops_almost_ten_percent(self):
        assert PARIKH_GATING.power_factor == pytest.approx(0.901, abs=0.001)


class TestDesign:
    def test_no_area_cost(self):
        assert gated_design().area == 1.0

    def test_energy_matches_effect(self):
        assert gated_design().energy == pytest.approx(0.965)


class TestFinding16:
    @pytest.mark.parametrize(
        "scenario,alpha,expected",
        [
            (FW, 0.8, 0.99),
            (FT, 0.8, 0.98),
            (FW, 0.2, 0.97),
            (FT, 0.2, 0.92),
        ],
    )
    def test_paper_ncf_values(self, scenario, alpha, expected):
        assert gating_ncf(scenario, alpha) == pytest.approx(expected, abs=0.005)

    @pytest.mark.parametrize("alpha", [0.1, 0.2, 0.5, 0.8, 0.9])
    def test_strongly_sustainable(self, alpha):
        assert classify_gating(alpha) is Sustainability.STRONG

    def test_alpha_one_is_neutral(self):
        """With only the embodied axis (alpha=1) and zero area cost the
        comparison is exactly neutral on every axis."""
        assert classify_gating(1.0) is Sustainability.NEUTRAL


class TestCustomEffect:
    def test_costly_gating_hardware_can_flip_verdict(self):
        heavy = PipelineGatingEffect(
            perf_factor=0.934, energy_factor=0.965, area_overhead=0.2
        )
        assert classify_gating(0.9, heavy) is Sustainability.LESS
