"""Unit tests for the ACT -> lifetime bridge."""

from __future__ import annotations

import pytest

from repro.act.model import ActChipSpec, ActModel
from repro.lifetime.act_bridge import device_from_act
from repro.lifetime.replacement import indifference_point


@pytest.fixture
def spec() -> ActChipSpec:
    return ActChipSpec(
        "server", die_area_mm2=400.0, avg_power_w=150.0, lifetime_hours=3 * 365 * 24
    )


class TestBridge:
    def test_embodied_matches_act(self, spec):
        act = ActModel()
        device = device_from_act(spec, act)
        assert device.embodied == pytest.approx(act.embodied_kg(spec))

    def test_rate_times_lifetime_recovers_operational(self, spec):
        act = ActModel()
        device = device_from_act(spec, act)
        years = spec.lifetime_hours / (365 * 24)
        assert device.operational_rate * years == pytest.approx(
            act.operational_kg(spec)
        )

    def test_performance_passed_through(self, spec):
        assert device_from_act(spec, performance=2.5).performance == 2.5

    def test_upgrade_analysis_end_to_end(self):
        """Old 28nm hog vs new 7nm chip: the indifference point must be
        positive and shorter than the old chip's remaining life for a
        sensible upgrade story."""
        old = device_from_act(
            ActChipSpec("old", die_area_mm2=400.0, avg_power_w=250.0, node="28nm")
        )
        new = device_from_act(
            ActChipSpec("new", die_area_mm2=300.0, avg_power_w=120.0, node="7nm")
        )
        t_star = indifference_point(old, new)
        assert t_star is not None
        assert 0.0 < t_star < 3.0  # pays back within a server lifetime
