"""Unit tests for lifetime/replacement analyses."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.lifetime.replacement import (
    DeviceFootprint,
    breakeven_lifetime_extension,
    footprint_per_work,
    indifference_point,
)


@pytest.fixture
def old_server() -> DeviceFootprint:
    return DeviceFootprint("old server", embodied=300.0, operational_rate=200.0)


@pytest.fixture
def new_server() -> DeviceFootprint:
    return DeviceFootprint(
        "new server", embodied=350.0, operational_rate=120.0, performance=1.5
    )


class TestDeviceFootprint:
    def test_total_footprint_linear_in_time(self, old_server):
        assert old_server.total_footprint(0.0) == 300.0
        assert old_server.total_footprint(2.0) == pytest.approx(700.0)

    def test_embodied_share_decreases_with_lifetime(self, old_server):
        shares = [old_server.embodied_share(t) for t in (1.0, 3.0, 10.0)]
        assert shares == sorted(shares, reverse=True)
        assert all(0.0 < s < 1.0 for s in shares)

    def test_zero_footprint_share(self):
        ghost = DeviceFootprint("ghost", embodied=0.0, operational_rate=0.0)
        assert ghost.embodied_share(5.0) == 0.0

    def test_rejects_negative_embodied(self):
        with pytest.raises(ValidationError):
            DeviceFootprint("x", embodied=-1.0, operational_rate=1.0)

    def test_rejects_negative_lifetime(self, old_server):
        with pytest.raises(ValidationError):
            old_server.total_footprint(-1.0)


class TestIndifferencePoint:
    def test_closed_form(self, old_server, new_server):
        t_star = indifference_point(old_server, new_server)
        assert t_star == pytest.approx(350.0 / 80.0)

    def test_crossing_is_exact(self, old_server, new_server):
        t_star = indifference_point(old_server, new_server)
        keeping = old_server.operational_rate * t_star
        replacing = new_server.total_footprint(t_star)
        assert keeping == pytest.approx(replacing)

    def test_no_operational_saving_never_pays(self, old_server):
        sidegrade = DeviceFootprint("sidegrade", embodied=100.0, operational_rate=200.0)
        assert indifference_point(old_server, sidegrade) is None

    def test_worse_device_never_pays(self, old_server):
        hog = DeviceFootprint("hog", embodied=50.0, operational_rate=300.0)
        assert indifference_point(old_server, hog) is None

    def test_cheaper_embodied_pays_sooner(self, old_server, new_server):
        lean = DeviceFootprint("lean", embodied=100.0, operational_rate=120.0)
        assert indifference_point(old_server, lean) < indifference_point(
            old_server, new_server
        )


class TestFootprintPerWork:
    def test_amortization_monotone(self, new_server):
        """Junkyard computing: longer service, lower footprint/work."""
        values = [footprint_per_work(new_server, t) for t in (1.0, 3.0, 10.0)]
        assert values == sorted(values, reverse=True)

    def test_asymptote_is_marginal_rate(self, new_server):
        long_lived = footprint_per_work(new_server, 1e9)
        assert long_lived == pytest.approx(
            new_server.operational_rate / new_server.performance, rel=1e-6
        )

    def test_rejects_zero_lifetime(self, new_server):
        with pytest.raises(ValidationError):
            footprint_per_work(new_server, 0.0)


class TestBreakevenExtension:
    def test_efficient_old_device_worth_keeping(self, new_server):
        frugal_old = DeviceFootprint("frugal", embodied=300.0, operational_rate=60.0)
        assert breakeven_lifetime_extension(frugal_old, new_server, 3.0) == 0.0

    def test_power_hog_not_worth_keeping(self, new_server):
        hog = DeviceFootprint("hog", embodied=300.0, operational_rate=500.0)
        assert breakeven_lifetime_extension(hog, new_server, 3.0) is None

    def test_performance_matters(self):
        """A new device with much higher throughput can beat even a
        frugal old device per unit of work."""
        old = DeviceFootprint("old", embodied=300.0, operational_rate=100.0)
        new = DeviceFootprint(
            "new", embodied=200.0, operational_rate=100.0, performance=10.0
        )
        assert breakeven_lifetime_extension(old, new, 3.0) is None
