"""Unit tests for the InO/FSC/OoO core design points (paper §5.6)."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.microarch.cores import (
    CORE_ROSTER,
    FSC_CORE,
    INO_CORE,
    OOO_CORE,
    core_by_name,
)


class TestPaperNumbers:
    def test_ino_is_unit_baseline(self):
        assert (INO_CORE.area, INO_CORE.perf, INO_CORE.power) == (1.0, 1.0, 1.0)

    def test_fsc_quoted_numbers(self):
        assert FSC_CORE.perf == pytest.approx(1.64)
        assert FSC_CORE.area == pytest.approx(1.01)
        assert FSC_CORE.power == pytest.approx(1.01)

    def test_ooo_quoted_numbers(self):
        assert OOO_CORE.perf == pytest.approx(1.75)
        assert OOO_CORE.area == pytest.approx(1.39)
        assert OOO_CORE.power == pytest.approx(2.32)

    def test_fsc_energy_below_ino(self):
        """FSC: +64 % perf for +1 % power -> much lower energy."""
        assert FSC_CORE.energy == pytest.approx(1.01 / 1.64)
        assert FSC_CORE.energy < INO_CORE.energy

    def test_ooo_energy_above_ino(self):
        assert OOO_CORE.energy == pytest.approx(2.32 / 1.75)
        assert OOO_CORE.energy > INO_CORE.energy


class TestRoster:
    def test_order_and_membership(self):
        assert CORE_ROSTER == (INO_CORE, FSC_CORE, OOO_CORE)

    def test_lookup(self):
        assert core_by_name("FSC") is FSC_CORE
        assert core_by_name("InO") is INO_CORE
        assert core_by_name("OoO") is OOO_CORE

    def test_unknown_core(self):
        with pytest.raises(ValidationError, match="FSC"):
            core_by_name("VLIW")
