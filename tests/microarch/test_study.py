"""Unit tests for the core-microarchitecture study (Findings #9-#11)."""

from __future__ import annotations

import pytest

from repro.core.classify import Sustainability
from repro.core.scenario import UseScenario
from repro.microarch.cores import FSC_CORE, INO_CORE, OOO_CORE
from repro.microarch.study import compare_cores, core_chart

FW = UseScenario.FIXED_WORK
FT = UseScenario.FIXED_TIME


class TestCoreChart:
    def test_three_points_in_order(self):
        chart = core_chart(FW, 0.8)
        assert [p.name for p in chart] == ["InO", "FSC", "OoO"]

    def test_ino_at_unity(self):
        chart = core_chart(FT, 0.2)
        ino = chart[0]
        assert ino.perf == pytest.approx(1.0)
        assert ino.ncf == pytest.approx(1.0)

    def test_figure7a_values(self):
        """Panel (a): embodied-dominated fixed-work chart values."""
        chart = {p.name: p for p in core_chart(FW, 0.8)}
        assert chart["FSC"].ncf == pytest.approx(0.8 * 1.01 + 0.2 * (1.01 / 1.64))
        assert chart["OoO"].ncf == pytest.approx(0.8 * 1.39 + 0.2 * (2.32 / 1.75))

    def test_fsc_bottom_right_of_ino_under_fixed_work(self):
        """FSC improves both axes vs InO under fixed-work — it sits
        bottom-right in panels (a) and (c)."""
        for alpha in (0.2, 0.8):
            chart = {p.name: p for p in core_chart(FW, alpha)}
            assert chart["FSC"].perf > chart["InO"].perf
            assert chart["FSC"].ncf < chart["InO"].ncf


class TestFinding9:
    @pytest.mark.parametrize("alpha", [0.2, 0.8])
    def test_ooo_less_sustainable_than_ino(self, alpha):
        comparison = compare_cores(OOO_CORE, INO_CORE, alpha)
        assert comparison.category is Sustainability.LESS

    def test_ooo_higher_performance(self):
        assert compare_cores(OOO_CORE, INO_CORE, 0.5).perf_ratio == pytest.approx(1.75)


class TestFinding10:
    def test_fsc_fixed_work_footprint_below_ino(self):
        for alpha in (0.2, 0.8):
            comparison = compare_cores(FSC_CORE, INO_CORE, alpha)
            assert comparison.footprint_ratio_fixed_work < 1.0

    def test_fsc_fixed_time_barely_above_ino(self):
        comparison = compare_cores(FSC_CORE, INO_CORE, 0.8)
        assert 1.0 < comparison.footprint_ratio_fixed_time < 1.02

    def test_fsc_weakly_sustainable_strict_reading(self):
        """NCF_ft = 1.01 > 1 strictly, so strict classification is
        weak; the paper calls it 'very close to strongly sustainable'."""
        comparison = compare_cores(FSC_CORE, INO_CORE, 0.8)
        assert comparison.category is Sustainability.WEAK


class TestFinding11:
    def test_footprint_reduction_range(self):
        """32 % (embodied fixed-work) to 53 % (operational fixed-time)."""
        emb = compare_cores(FSC_CORE, OOO_CORE, 0.8)
        op = compare_cores(FSC_CORE, OOO_CORE, 0.2)
        assert 1.0 - emb.footprint_ratio_fixed_work == pytest.approx(0.32, abs=0.01)
        assert 1.0 - op.footprint_ratio_fixed_time == pytest.approx(0.53, abs=0.01)

    def test_perf_degradation(self):
        comparison = compare_cores(FSC_CORE, OOO_CORE, 0.5)
        assert 1.0 - comparison.perf_ratio == pytest.approx(0.063, abs=0.001)

    @pytest.mark.parametrize("alpha", [0.2, 0.8])
    def test_fsc_strongly_sustainable_vs_ooo(self, alpha):
        assert compare_cores(FSC_CORE, OOO_CORE, alpha).category is (
            Sustainability.STRONG
        )
