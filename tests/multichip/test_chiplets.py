"""Unit tests for chiplet partitioning and performance-per-wafer."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.multichip.chiplets import (
    ChipletPartition,
    best_partition,
    evaluate_partition,
)
from repro.wafer.embodied import EmbodiedFootprintModel
from repro.wafer.yield_models import MurphyYield, PerfectYield


class TestPartitionGeometry:
    def test_monolithic_has_no_overheads(self):
        part = ChipletPartition(chiplets=1, logic_area_mm2=600.0)
        assert part.die_area_mm2 == 600.0
        assert part.total_silicon_mm2 == 600.0
        assert part.performance == 1.0

    def test_split_adds_interface_area(self):
        part = ChipletPartition(chiplets=4, logic_area_mm2=600.0)
        assert part.die_area_mm2 == pytest.approx(150.0 * 1.1)
        assert part.total_silicon_mm2 == pytest.approx(660.0)

    def test_performance_penalty_compounds(self):
        part = ChipletPartition(
            chiplets=3, logic_area_mm2=600.0, perf_penalty_per_cut=0.05
        )
        assert part.performance == pytest.approx(0.95**2)

    def test_rejects_zero_chiplets(self):
        with pytest.raises(ValidationError):
            ChipletPartition(chiplets=0, logic_area_mm2=600.0)

    def test_rejects_negative_overheads(self):
        with pytest.raises(ValidationError):
            ChipletPartition(chiplets=2, logic_area_mm2=600.0, interface_overhead=-0.1)


class TestEvaluation:
    def test_smaller_dies_yield_better(self):
        mono = evaluate_partition(ChipletPartition(1, 600.0))
        quad = evaluate_partition(ChipletPartition(4, 600.0))
        assert quad.die_yield > mono.die_yield

    def test_systems_per_wafer_counts_full_sets(self):
        outcome = evaluate_partition(ChipletPartition(4, 600.0))
        assert outcome.systems_per_wafer == pytest.approx(
            outcome.systems_per_wafer
        )
        # A system needs 4 good dies: systems < good dies.
        model = EmbodiedFootprintModel(yield_model=MurphyYield())
        good = model.good_chips_per_wafer(ChipletPartition(4, 600.0).die_area_mm2)
        assert outcome.systems_per_wafer == pytest.approx(good / 4)

    def test_perfect_yield_removes_chiplet_benefit(self):
        """Under perfect yield splitting only adds overhead: monolithic
        wins performance per wafer."""
        model = EmbodiedFootprintModel(yield_model=PerfectYield())
        mono = evaluate_partition(ChipletPartition(1, 600.0), model)
        quad = evaluate_partition(ChipletPartition(4, 600.0), model)
        assert mono.perf_per_wafer > quad.perf_per_wafer

    def test_murphy_yield_rewards_big_die_splitting(self):
        """For a reticle-scale die under Murphy yield, chiplets win."""
        mono = evaluate_partition(ChipletPartition(1, 800.0))
        quad = evaluate_partition(ChipletPartition(4, 800.0))
        assert quad.perf_per_wafer > mono.perf_per_wafer
        assert quad.embodied_per_system < mono.embodied_per_system

    def test_design_point_bridge(self):
        outcome = evaluate_partition(ChipletPartition(2, 400.0))
        d = outcome.design_point("duo")
        assert d.name == "duo"
        assert d.area == pytest.approx(outcome.embodied_per_system)
        assert d.perf == pytest.approx(outcome.performance)


class TestBestPartition:
    def test_big_die_prefers_multiple_chiplets(self):
        best = best_partition(800.0, max_chiplets=8)
        assert best.partition.chiplets > 1

    def test_small_die_stays_monolithic(self):
        best = best_partition(50.0, max_chiplets=8)
        assert best.partition.chiplets == 1

    def test_heavy_penalty_discourages_splitting(self):
        best = best_partition(800.0, max_chiplets=8, perf_penalty_per_cut=0.5)
        assert best.partition.chiplets == 1

    def test_custom_model_respected(self):
        model = EmbodiedFootprintModel(yield_model=PerfectYield())
        best = best_partition(800.0, max_chiplets=8, model=model)
        assert best.partition.chiplets == 1

    def test_rejects_zero_max(self):
        with pytest.raises(ValidationError):
            best_partition(400.0, max_chiplets=0)

    def test_oversized_monolithic_skipped_not_fatal(self):
        """2000 mm^2 exceeds the de Vries validity for one die but is
        fine split into four."""
        best = best_partition(2000.0, max_chiplets=8)
        assert best.partition.chiplets >= 2
