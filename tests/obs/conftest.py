"""Observability tests share global tracer/registry state — isolate it."""

from __future__ import annotations

import pytest

from repro.obs import events, metrics, trace


@pytest.fixture(autouse=True)
def clean_obs():
    """Reset the global tracer, metrics registry and event log around
    every test."""
    trace.reset()
    metrics.reset()
    events.reset()
    yield
    trace.reset()
    metrics.reset()
    events.reset()
