"""Observability tests share global tracer/registry state — isolate it."""

from __future__ import annotations

import pytest

from repro.obs import metrics, trace


@pytest.fixture(autouse=True)
def clean_obs():
    """Reset the global tracer and metrics registry around every test."""
    trace.reset()
    metrics.reset()
    yield
    trace.reset()
    metrics.reset()
