"""Chrome Trace Event export of trace reports."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import ValidationError
from repro.obs.chrome import (
    CHUNK_TID,
    MAIN_TID,
    PARENT_PID,
    SUPERVISOR_TID,
    WORKER_PID,
    chrome_trace_events,
    report_to_chrome,
)


def _report() -> dict:
    """A hand-built two-worker parallel sweep report."""
    return {
        "schema": "focal-trace/1",
        "manifest": {"command": "sweep"},
        "trace": [
            {
                "name": "cli:sweep",
                "start_s": 0.0,
                "duration_s": 1.0,
                "children": [
                    {
                        "name": "sweep",
                        "start_s": 0.1,
                        "duration_s": 0.8,
                        "attributes": {"workers": 2},
                        "children": [
                            {
                                "name": "kernels",
                                "start_s": 0.2,
                                "duration_s": 0.5,
                                "children": [],
                            },
                            {
                                "name": "chunk",
                                "start_s": 0.7,
                                "duration_s": 0.1,
                                "counters": {"points": 64},
                                "children": [],
                            },
                        ],
                    }
                ],
            }
        ],
        "metrics": [],
        "events": [
            {
                "name": "shard",
                "worker": 101,
                "seq": 0,
                "t_rel": 0.25,
                "dur_s": 0.2,
                "attrs": {"lo": 0, "hi": 32},
            },
            {
                "name": "heartbeat",
                "worker": 102,
                "seq": 0,
                "t_rel": 0.3,
                "dur_s": None,
            },
            {
                "name": "pool.retry",
                "worker": 999,
                "seq": "parent-0",
                "track": "supervisor",
                "t_rel": 0.4,
                "dur_s": None,
            },
            {"name": "unaligned", "worker": 101, "seq": 9, "dur_s": None},
        ],
    }


class TestChromeTraceEvents:
    def test_rejects_non_reports(self):
        with pytest.raises(ValidationError):
            chrome_trace_events({"nope": 1})

    def test_span_tree_lands_on_parent_main_track(self):
        events = chrome_trace_events(_report())
        sweep = next(e for e in events if e["name"] == "sweep")
        assert (sweep["pid"], sweep["tid"], sweep["ph"]) == (
            PARENT_PID,
            MAIN_TID,
            "X",
        )
        assert sweep["ts"] == 100_000  # 0.1 s in microseconds
        assert sweep["dur"] == 800_000

    def test_chunk_spans_duplicate_onto_chunk_track(self):
        events = chrome_trace_events(_report())
        chunk_tids = {e["tid"] for e in events if e["name"] == "chunk"}
        assert chunk_tids == {MAIN_TID, CHUNK_TID}

    def test_one_track_per_worker_with_thread_names(self):
        events = chrome_trace_events(_report())
        worker_tids = {
            e["tid"]
            for e in events
            if e["pid"] == WORKER_PID and e["ph"] != "M"
        }
        assert worker_tids == {101, 102}
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M"
            and e["pid"] == WORKER_PID
            and e["name"] == "thread_name"
        }
        assert names == {"worker 101", "worker 102"}

    def test_worker_duration_event_stamps_start(self):
        events = chrome_trace_events(_report())
        shard = next(e for e in events if e["name"] == "shard")
        assert shard["ts"] == 250_000  # t_rel is the shard's start
        assert shard["dur"] == 200_000
        assert shard["args"]["worker"] == 101

    def test_supervisor_events_are_parent_instants(self):
        events = chrome_trace_events(_report())
        retry = next(e for e in events if e["name"] == "pool.retry")
        assert (retry["pid"], retry["tid"], retry["ph"]) == (
            PARENT_PID,
            SUPERVISOR_TID,
            "i",
        )

    def test_unaligned_events_are_skipped(self):
        events = chrome_trace_events(_report())
        assert not any(e["name"] == "unaligned" for e in events)

    def test_heartbeats_are_worker_instants(self):
        events = chrome_trace_events(_report())
        beat = next(e for e in events if e["name"] == "heartbeat")
        assert (beat["pid"], beat["ph"]) == (WORKER_PID, "i")


class TestReportToChrome:
    def test_valid_chrome_trace_document(self):
        doc = json.loads(report_to_chrome(_report()))
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        for event in doc["traceEvents"]:
            assert {"name", "ph", "pid"} <= set(event)
            if event["ph"] in ("X", "i"):
                assert isinstance(event["ts"], int)
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_empty_report_still_has_process_metadata(self):
        doc = json.loads(
            report_to_chrome({"trace": [], "manifest": {}, "events": []})
        )
        names = {e["args"]["name"] for e in doc["traceEvents"]}
        assert "focal workers" in names
        assert any("focal parent" in n for n in names)
