"""The cross-process event layer: buffers, the merged log, spill files."""

from __future__ import annotations

import json
import os

from repro.obs import events
from repro.obs.events import SPILL_PREFIX, EventBuffer, EventLog


class TestEventBuffer:
    def test_disabled_by_default_and_add_is_noop(self):
        buf = EventBuffer()
        assert not buf.enabled
        buf.add("shard", lo=0, hi=10)
        assert buf.events == []
        assert buf.drain() == []

    def test_add_records_name_worker_seq_and_attrs(self):
        buf = EventBuffer()
        buf.enable()
        buf.add("shard", lo=0, hi=10)
        buf.add("heartbeat")
        (shard, beat) = buf.events
        assert shard["name"] == "shard"
        assert shard["worker"] == os.getpid()
        assert shard["seq"] == 0
        assert shard["attrs"] == {"lo": 0, "hi": 10}
        assert shard["dur_s"] is None
        assert beat["seq"] == 1
        assert "attrs" not in beat

    def test_now_is_monotonic_and_wall_anchored(self):
        import time

        buf = EventBuffer()
        buf.enable()
        first = buf.now()
        second = buf.now()
        assert second >= first
        assert abs(first - time.time()) < 5.0  # anchored to the wall clock

    def test_explicit_start_and_duration(self):
        buf = EventBuffer()
        buf.enable()
        t0 = buf.now()
        buf.add("compute", start=t0, dur_s=0.25)
        event = buf.events[0]
        assert event["t_wall"] == t0
        assert event["dur_s"] == 0.25

    def test_drain_hands_over_and_keeps_sequence(self):
        buf = EventBuffer()
        buf.enable()
        buf.add("a")
        first = buf.drain()
        buf.add("b")
        second = buf.drain()
        assert [e["name"] for e in first] == ["a"]
        assert [e["name"] for e in second] == ["b"]
        assert second[0]["seq"] == 1  # counter survives the drain
        assert buf.events == []

    def test_disable_drops_buffered_events(self):
        buf = EventBuffer()
        buf.enable()
        buf.add("a")
        buf.disable()
        assert buf.events == []
        assert not buf.enabled

    def test_spill_write_through(self, tmp_path):
        buf = EventBuffer()
        buf.enable(tmp_path)
        buf.add("shard", lo=0, hi=4)
        # written through immediately, before any drain
        spill = tmp_path / f"{SPILL_PREFIX}{os.getpid()}.jsonl"
        rows = [json.loads(line) for line in spill.read_text().splitlines()]
        assert rows[0]["name"] == "shard"
        assert rows[0]["attrs"] == {"lo": 0, "hi": 4}
        buf.disable()

    def test_unwritable_spill_dir_degrades_to_memory_only(self, tmp_path):
        buf = EventBuffer()
        buf.enable(tmp_path / "does" / "not" / "exist")
        buf.add("shard")
        assert len(buf.events) == 1  # recording still works


class TestEventLog:
    def test_disabled_log_ignores_everything(self):
        log = EventLog()
        log.record("pool.retry")
        assert log.extend([{"name": "shard", "worker": 1, "seq": 0}]) == 0
        assert len(log) == 0

    def test_extend_dedups_on_worker_seq(self):
        log = EventLog()
        log.enable()
        reply = [{"name": "shard", "worker": 7, "seq": 0, "t_wall": 1.0}]
        assert log.extend(reply) == 1
        assert log.extend(reply) == 0  # same event via the spill transport
        assert len(log) == 1

    def test_extend_skips_malformed_rows(self):
        log = EventLog()
        log.enable()
        added = log.extend(
            [{"worker": 1, "seq": 0}, "not a dict", {"name": "ok", "seq": 1}]
        )
        assert added == 1
        assert log.events()[0]["name"] == "ok"

    def test_record_tags_parent_events(self):
        log = EventLog()
        log.enable()
        log.record("pool.respawn", track="supervisor", respawns=1)
        (event,) = log.events()
        assert event["track"] == "supervisor"
        assert event["seq"] == "parent-0"
        assert event["attrs"] == {"respawns": 1}

    def test_collect_spill_reads_files_and_skips_torn_line(self, tmp_path):
        log = EventLog()
        log.enable()
        good = {"name": "shard", "worker": 5, "seq": 0, "t_wall": 2.0}
        (tmp_path / f"{SPILL_PREFIX}5.jsonl").write_text(
            json.dumps(good) + "\n" + '{"name": "shard", "worker": 5, "se'
        )
        assert log.collect_spill(tmp_path) == 1
        assert log.events()[0]["worker"] == 5

    def test_collect_spill_dedups_against_replies(self, tmp_path):
        log = EventLog()
        log.enable()
        event = {"name": "shard", "worker": 5, "seq": 0, "t_wall": 2.0}
        log.extend([event])
        (tmp_path / f"{SPILL_PREFIX}5.jsonl").write_text(json.dumps(event) + "\n")
        assert log.collect_spill(tmp_path) == 0
        assert len(log) == 1

    def test_events_sorted_by_timestamp(self):
        log = EventLog()
        log.enable()
        log.extend(
            [
                {"name": "late", "worker": 1, "seq": 1, "t_wall": 9.0},
                {"name": "early", "worker": 1, "seq": 0, "t_wall": 1.0},
            ]
        )
        assert [e["name"] for e in log.events()] == ["early", "late"]

    def test_as_dicts_adds_t_rel_against_trace_origin(self):
        log = EventLog()
        log.enable()
        log.extend([{"name": "shard", "worker": 1, "seq": 0, "t_wall": 101.5}])
        rows = log.as_dicts(started_at=100.0)
        assert rows[0]["t_rel"] == 1.5
        # without an anchor there is no t_rel claim
        assert "t_rel" not in log.as_dicts()[0]

    def test_workers_lists_distinct_ids(self):
        log = EventLog()
        log.enable()
        log.extend(
            [
                {"name": "a", "worker": 3, "seq": 0},
                {"name": "b", "worker": 1, "seq": 0},
                {"name": "c", "worker": 3, "seq": 1},
            ]
        )
        assert log.workers() == [1, 3]


class TestGlobalState:
    def test_module_enable_disable_reset(self):
        assert not events.is_enabled()
        events.enable()
        assert events.is_enabled()
        events.record("pool.retry", track="supervisor")
        assert len(events.get_log()) == 1
        events.reset()
        assert not events.is_enabled()
        assert len(events.get_log()) == 0

    def test_init_worker_arms_and_disarms_the_buffer(self, tmp_path):
        events.init_worker(True, str(tmp_path))
        assert events.get_buffer().enabled
        events.get_buffer().add("shard")
        events.init_worker(False)
        assert not events.get_buffer().enabled

    def test_spill_dir_lifecycle(self):
        path = events.make_spill_dir()
        assert os.path.isdir(path)
        events.cleanup_spill_dir(path)
        assert not os.path.exists(path)
        events.cleanup_spill_dir(path)  # idempotent
