"""Tests for the shared structured logger."""

from __future__ import annotations

import io
import logging

import pytest

from repro.core.errors import ValidationError
from repro.obs.log import LOGGER_NAME, configure, get_logger, kv


@pytest.fixture(autouse=True)
def restore_logger():
    logger = logging.getLogger(LOGGER_NAME)
    handlers = list(logger.handlers)
    level = logger.level
    yield
    logger.handlers = handlers
    logger.setLevel(level)


class TestKv:
    def test_plain_fields(self):
        assert kv("chunk.done", points=1024, valid=1000) == (
            "chunk.done points=1024 valid=1000"
        )

    def test_values_with_spaces_are_quoted(self):
        assert kv("study.failed", error="boom went off") == (
            "study.failed error='boom went off'"
        )

    def test_no_fields(self):
        assert kv("tick") == "tick"


class TestConfigure:
    def test_single_shared_logger(self):
        assert get_logger() is logging.getLogger(LOGGER_NAME)

    def test_structured_line_on_stream(self):
        stream = io.StringIO()
        logger = configure("debug", stream=stream)
        logger.debug(kv("study.run", study="figure3"))
        line = stream.getvalue().strip()
        assert line.endswith("DEBUG repro: study.run study=figure3")

    def test_level_filters(self):
        stream = io.StringIO()
        logger = configure("warning", stream=stream)
        logger.debug(kv("hidden"))
        logger.warning(kv("shown"))
        assert "hidden" not in stream.getvalue()
        assert "shown" in stream.getvalue()

    def test_reconfigure_replaces_handler(self):
        first = io.StringIO()
        second = io.StringIO()
        configure("info", stream=first)
        logger = configure("info", stream=second)
        logger.info(kv("once"))
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1

    def test_unknown_level_raises(self):
        with pytest.raises(ValidationError):
            configure("chatty")
