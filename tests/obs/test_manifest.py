"""Tests for run manifests and the trace-report round trip."""

from __future__ import annotations

import json

import pytest

from repro import __version__
from repro.core.errors import ValidationError
from repro.obs.manifest import (
    SCHEMA,
    RunManifest,
    build_manifest,
    build_report,
    node_roster,
    report_from_json,
    report_to_json,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.show import render_report
from repro.obs.trace import Tracer


def _traced_tracer() -> Tracer:
    tracer = Tracer()
    tracer.enable()
    with tracer.span("cli:sweep", command="sweep"):
        with tracer.span("sweep", grid_points=100):
            with tracer.span("chunk", index=0):
                pass
    return tracer


class TestNodeRoster:
    def test_contains_identity_fields(self):
        roster = node_roster()
        for key in ("hostname", "platform", "python", "numpy", "cpu_count"):
            assert key in roster


class TestBuildManifest:
    def test_records_argv_seed_version_and_phases(self):
        tracer = _traced_tracer()
        manifest = build_manifest(
            ["sweep", "--max-cores", "16"], command="sweep", seed=7, tracer=tracer
        )
        assert manifest.argv == ("sweep", "--max-cores", "16")
        assert manifest.seed == 7
        assert manifest.version == __version__
        # One root -> root plus its direct children as phases.
        assert [p["phase"] for p in manifest.phases] == ["cli:sweep", "sweep"]
        assert manifest.duration_s is not None

    def test_manifest_dict_round_trip(self):
        manifest = build_manifest(["findings"], command="findings")
        clone = RunManifest.from_dict(manifest.as_dict())
        assert clone.argv == manifest.argv
        assert clone.command == manifest.command
        assert clone.version == manifest.version
        assert clone.node == manifest.node

    def test_malformed_manifest_raises(self):
        with pytest.raises(ValidationError):
            RunManifest.from_dict({"argv": ["x"]})


class TestReportRoundTrip:
    def test_report_round_trips_through_json(self):
        tracer = _traced_tracer()
        registry = MetricsRegistry()
        registry.counter("focal_evaluations_total").inc(100)
        manifest = build_manifest(["sweep"], command="sweep", tracer=tracer)
        report = build_report(manifest, tracer=tracer, registry=registry)
        parsed = report_from_json(report_to_json(report))
        assert parsed["schema"] == SCHEMA
        assert parsed["manifest"]["command"] == "sweep"
        assert parsed["trace"][0]["name"] == "cli:sweep"
        assert parsed["metrics"][0]["value"] == 100
        # Serialization is loss-free for the span tree.
        assert parsed["trace"] == json.loads(json.dumps(report["trace"], default=str))

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValidationError):
            report_from_json(json.dumps({"schema": "other/9", "manifest": {}}))

    def test_rejects_invalid_json(self):
        with pytest.raises(ValidationError):
            report_from_json("{not json")


class TestRender:
    def test_render_report_sections(self):
        tracer = _traced_tracer()
        registry = MetricsRegistry()
        registry.gauge("focal_cache_hit_ratio").set(0.5)
        manifest = build_manifest(["sweep"], command="sweep", tracer=tracer)
        report = build_report(manifest, tracer=tracer, registry=registry)
        text = render_report(report_from_json(report_to_json(report)))
        assert "run manifest" in text
        assert "phase breakdown" in text
        assert "trace" in text
        assert "chunk" in text
        assert "focal_cache_hit_ratio" in text

    def test_render_empty_trace_still_has_manifest(self):
        manifest = build_manifest(["version"], command="version")
        text = render_report(build_report(manifest))
        assert "run manifest" in text
        assert "phase breakdown" not in text
