"""Tests for the metrics registry and its exporters."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import ValidationError
from repro.obs.exporters import (
    metrics_to_jsonl,
    metrics_to_prometheus,
    trace_to_jsonl,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Tracer


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValidationError):
            reg.counter("c").inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(2.5)
        gauge.inc()
        gauge.dec(0.5)
        assert gauge.value == 3.0

    def test_histogram_cumulative_buckets(self):
        hist = Histogram("h", "", {}, buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 3.0, 7.0, 100.0):
            hist.observe(value)
        assert hist.bucket_counts == [1, 2, 3]
        assert hist.count == 4
        assert hist.sum == pytest.approx(110.5)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValidationError):
            Histogram("h", "", {}, buckets=(5.0, 1.0))

    def test_same_name_same_labels_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("c", labels={"a": "1"}) is reg.counter("c", labels={"a": "1"})
        assert reg.counter("c", labels={"a": "2"}) is not reg.counter("c", labels={"a": "1"})

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValidationError):
            reg.gauge("m")
        with pytest.raises(ValidationError):
            reg.gauge("m", labels={"x": "y"})  # same family, different labels


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("focal_evals_total", "total evaluations").inc(42)
        reg.gauge("focal_ratio").set(0.5)
        text = metrics_to_prometheus(reg)
        assert "# HELP focal_evals_total total evaluations" in text
        assert "# TYPE focal_evals_total counter" in text
        assert "focal_evals_total 42" in text
        assert "# TYPE focal_ratio gauge" in text
        assert "focal_ratio 0.5" in text
        assert text.endswith("\n")

    def test_histogram_expansion(self):
        reg = MetricsRegistry()
        reg.histogram("lat", "latency", buckets=(0.1, 1.0)).observe(0.05)
        text = metrics_to_prometheus(reg)
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.05" in text
        assert "lat_count 1" in text

    def test_help_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", "line one\nline two \\ backslash").inc()
        text = metrics_to_prometheus(reg)
        assert "# HELP c line one\\nline two \\\\ backslash" in text

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", labels={"path": 'a"b\\c\nd'}).inc()
        text = metrics_to_prometheus(reg)
        assert 'c{path="a\\"b\\\\c\\nd"} 1' in text

    def test_metric_name_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.with spaces").inc()
        text = metrics_to_prometheus(reg)
        assert "weird_name_with_spaces 1" in text

    def test_empty_registry_exports_empty(self):
        assert metrics_to_prometheus(MetricsRegistry()) == ""


class TestJsonlExport:
    def test_one_line_per_instrument(self):
        reg = MetricsRegistry()
        reg.counter("a", "help a").inc(2)
        reg.gauge("b", labels={"k": "v"}).set(1.5)
        lines = metrics_to_jsonl(reg).splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first == {"name": "a", "kind": "counter", "help": "help a", "labels": {}, "value": 2.0}
        assert second["labels"] == {"k": "v"} and second["value"] == 1.5

    def test_empty_registry(self):
        assert metrics_to_jsonl(MetricsRegistry()) == ""


class TestTraceJsonl:
    def test_empty_trace_exports_empty(self):
        assert trace_to_jsonl(Tracer()) == ""

    def test_nested_spans_flattened_with_paths(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("sweep", grid_points=8) as sp:
            sp.count("evals", 8)
            with tracer.span("chunk"):
                pass
        rows = [json.loads(line) for line in trace_to_jsonl(tracer).splitlines()]
        assert [(r["depth"], r["path"]) for r in rows] == [(0, "sweep"), (1, "sweep/chunk")]
        assert rows[0]["attributes"] == {"grid_points": 8}
        assert rows[0]["counters"] == {"evals": 8}
        assert rows[0]["duration_s"] >= 0.0
        assert rows[0]["start_s"] >= 0.0


class TestRegistryState:
    def test_disabled_by_default_and_enable(self):
        reg = MetricsRegistry()
        assert not reg.enabled
        reg.enable()
        assert reg.enabled

    def test_snapshot_order_is_creation_order(self):
        reg = MetricsRegistry()
        reg.gauge("z")
        reg.counter("a")
        assert [m["name"] for m in reg.snapshot()] == ["z", "a"]

    def test_clear_drops_instruments(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.clear()
        assert len(reg) == 0
