"""Tests for the metrics registry and its exporters."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import ValidationError
from repro.obs.exporters import (
    metrics_to_jsonl,
    metrics_to_prometheus,
    trace_to_jsonl,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Tracer


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValidationError):
            reg.counter("c").inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(2.5)
        gauge.inc()
        gauge.dec(0.5)
        assert gauge.value == 3.0

    def test_histogram_cumulative_buckets(self):
        hist = Histogram("h", "", {}, buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 3.0, 7.0, 100.0):
            hist.observe(value)
        assert hist.bucket_counts == [1, 2, 3]
        assert hist.count == 4
        assert hist.sum == pytest.approx(110.5)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValidationError):
            Histogram("h", "", {}, buckets=(5.0, 1.0))

    def test_same_name_same_labels_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("c", labels={"a": "1"}) is reg.counter("c", labels={"a": "1"})
        assert reg.counter("c", labels={"a": "2"}) is not reg.counter("c", labels={"a": "1"})

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValidationError):
            reg.gauge("m")
        with pytest.raises(ValidationError):
            reg.gauge("m", labels={"x": "y"})  # same family, different labels


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("focal_evals_total", "total evaluations").inc(42)
        reg.gauge("focal_ratio").set(0.5)
        text = metrics_to_prometheus(reg)
        assert "# HELP focal_evals_total total evaluations" in text
        assert "# TYPE focal_evals_total counter" in text
        assert "focal_evals_total 42" in text
        assert "# TYPE focal_ratio gauge" in text
        assert "focal_ratio 0.5" in text
        assert text.endswith("\n")

    def test_histogram_expansion(self):
        reg = MetricsRegistry()
        reg.histogram("lat", "latency", buckets=(0.1, 1.0)).observe(0.05)
        text = metrics_to_prometheus(reg)
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.05" in text
        assert "lat_count 1" in text

    def test_help_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", "line one\nline two \\ backslash").inc()
        text = metrics_to_prometheus(reg)
        assert "# HELP c line one\\nline two \\\\ backslash" in text

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", labels={"path": 'a"b\\c\nd'}).inc()
        text = metrics_to_prometheus(reg)
        assert 'c{path="a\\"b\\\\c\\nd"} 1' in text

    def test_metric_name_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.with spaces").inc()
        text = metrics_to_prometheus(reg)
        assert "weird_name_with_spaces 1" in text

    def test_empty_registry_exports_empty(self):
        assert metrics_to_prometheus(MetricsRegistry()) == ""


def _parse_prometheus(text: str):
    """A minimal 0.0.4 reader: family blocks with their samples.

    Returns ``{family: {"type": str, "help": str | None,
    "samples": [(name, labels_text, value)]}}`` in document order and
    asserts the structural rules the exposition format demands.
    """
    families: dict[str, dict] = {}
    current = None
    for line in text.splitlines():
        if line.startswith("# HELP "):
            _, _, name, help_text = line.split(" ", 3)
            assert name not in families, f"family {name} re-opened by HELP"
            families[name] = {"help": help_text, "type": None, "samples": []}
            current = name
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            if name not in families:
                families[name] = {"help": None, "type": kind, "samples": []}
            else:
                assert families[name]["type"] is None, f"duplicate TYPE {name}"
                families[name]["type"] = kind
            current = name
        else:
            sample_name = line.split("{")[0].split(" ")[0]
            base = sample_name
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix) and base.removesuffix(suffix) in families:
                    base = base.removesuffix(suffix)
            assert base == current, (
                f"sample {sample_name} outside its family block "
                f"(current family: {current})"
            )
            labels = line[len(sample_name):].rsplit(" ", 1)[0]
            value = float(line.rsplit(" ", 1)[1])
            families[base]["samples"].append((sample_name, labels, value))
    return families


class TestPrometheusConformance:
    """Text exposition format 0.0.4: all samples of one metric family
    must form a single block under one # HELP/# TYPE header."""

    def test_label_variants_group_under_one_header(self):
        reg = MetricsRegistry()
        # Interleave two families' label variants in creation order —
        # exactly what the sweep engine does when it creates per-worker
        # histograms while other counters tick.
        reg.counter("evals_total", "evaluations", labels={"mode": "a"}).inc(1)
        reg.gauge("ratio").set(0.5)
        reg.counter("evals_total", labels={"mode": "b"}).inc(2)
        reg.counter("evals_total", labels={"mode": "c"}).inc(3)
        text = metrics_to_prometheus(reg)
        assert text.count("# TYPE evals_total") == 1
        assert text.count("# HELP evals_total") == 1
        families = _parse_prometheus(text)  # asserts block contiguity
        assert [v for _, _, v in families["evals_total"]["samples"]] == [1, 2, 3]
        assert families["evals_total"]["help"] == "evaluations"

    def test_worker_histogram_variants_stay_contiguous(self):
        reg = MetricsRegistry()
        reg.histogram(
            "busy_seconds", "busy", labels={"worker": "1"}, buckets=(1.0,)
        ).observe(0.5)
        reg.counter("shards_total").inc()
        reg.histogram(
            "busy_seconds", labels={"worker": "2"}, buckets=(1.0,)
        ).observe(2.0)
        families = _parse_prometheus(metrics_to_prometheus(reg))
        names = [s[0] for s in families["busy_seconds"]["samples"]]
        # worker 1's bucket/sum/count then worker 2's, uninterrupted
        assert names == [
            "busy_seconds_bucket",
            "busy_seconds_bucket",
            "busy_seconds_sum",
            "busy_seconds_count",
            "busy_seconds_bucket",
            "busy_seconds_bucket",
            "busy_seconds_sum",
            "busy_seconds_count",
        ]
        assert families["busy_seconds"]["type"] == "histogram"

    def test_round_trip_values_match_registry(self):
        reg = MetricsRegistry()
        reg.counter("total", "t", labels={"k": "a"}).inc(5)
        reg.counter("total", labels={"k": "b"}).inc(7)
        reg.gauge("level").set(-2.5)
        hist = reg.histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        families = _parse_prometheus(metrics_to_prometheus(reg))
        totals = {
            labels: value
            for _, labels, value in families["total"]["samples"]
        }
        assert totals == {'{k="a"}': 5.0, '{k="b"}': 7.0}
        assert families["level"]["samples"][0][2] == -2.5
        lat = {
            (name, labels): value
            for name, labels, value in families["lat"]["samples"]
        }
        assert lat[("lat_bucket", '{le="0.1"}')] == 1  # cumulative
        assert lat[("lat_bucket", '{le="1"}')] == 2
        assert lat[("lat_bucket", '{le="+Inf"}')] == 3
        assert lat[("lat_count", "")] == 3
        assert lat[("lat_sum", "")] == pytest.approx(5.55)


class TestJsonlExport:
    def test_one_line_per_instrument(self):
        reg = MetricsRegistry()
        reg.counter("a", "help a").inc(2)
        reg.gauge("b", labels={"k": "v"}).set(1.5)
        lines = metrics_to_jsonl(reg).splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first == {"name": "a", "kind": "counter", "help": "help a", "labels": {}, "value": 2.0}
        assert second["labels"] == {"k": "v"} and second["value"] == 1.5

    def test_empty_registry(self):
        assert metrics_to_jsonl(MetricsRegistry()) == ""


class TestTraceJsonl:
    def test_empty_trace_exports_empty(self):
        assert trace_to_jsonl(Tracer()) == ""

    def test_nested_spans_flattened_with_paths(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("sweep", grid_points=8) as sp:
            sp.count("evals", 8)
            with tracer.span("chunk"):
                pass
        rows = [json.loads(line) for line in trace_to_jsonl(tracer).splitlines()]
        assert [(r["depth"], r["path"]) for r in rows] == [(0, "sweep"), (1, "sweep/chunk")]
        assert rows[0]["attributes"] == {"grid_points": 8}
        assert rows[0]["counters"] == {"evals": 8}
        assert rows[0]["duration_s"] >= 0.0
        assert rows[0]["start_s"] >= 0.0


class TestRegistryState:
    def test_disabled_by_default_and_enable(self):
        reg = MetricsRegistry()
        assert not reg.enabled
        reg.enable()
        assert reg.enabled

    def test_snapshot_order_is_creation_order(self):
        reg = MetricsRegistry()
        reg.gauge("z")
        reg.counter("a")
        assert [m["name"] for m in reg.snapshot()] == ["z", "a"]

    def test_clear_drops_instruments(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.clear()
        assert len(reg) == 0
