"""Bottleneck attribution over trace reports."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.obs.profile import CATEGORIES, profile_report, render_profile


def _shard(worker, start, dur, compute, shm=0.0):
    return {
        "name": "shard",
        "worker": worker,
        "seq": start,
        "t_rel": start,
        "dur_s": dur,
        "attrs": {"compute_s": compute, "shm_s": shm},
    }


def _report(events, *, wall=1.0, k_start=0.2, k_dur=0.6, workers=2) -> dict:
    return {
        "schema": "focal-trace/1",
        "manifest": {"command": "sweep"},
        "trace": [
            {
                "name": "sweep",
                "start_s": 0.0,
                "duration_s": wall,
                "attributes": {"workers": workers},
                "children": [
                    {
                        "name": "kernels",
                        "start_s": k_start,
                        "duration_s": k_dur,
                        "children": [],
                    }
                ],
            }
        ],
        "metrics": [],
        "events": events,
    }


class TestProfileReport:
    def test_categories_tile_the_wall_clock(self):
        # Two workers busy [0.2, 0.8): worker 1 computes 0.5 of its 0.6
        # window, worker 2 computes 0.3 and writes shm for 0.1.
        report = _report(
            [
                _shard(1, 0.2, 0.6, compute=0.5),
                _shard(2, 0.2, 0.6, compute=0.3, shm=0.1),
            ]
        )
        profile = profile_report(report)
        assert set(profile.seconds) == set(CATEGORIES)
        total = sum(profile.seconds.values())
        assert total == pytest.approx(profile.wall_s, rel=1e-9)
        assert sum(profile.shares.values()) == pytest.approx(1.0)
        assert profile.seconds["serial"] == pytest.approx(0.4)
        assert profile.seconds["compute"] == pytest.approx(0.8 / 2)

    def test_straggler_covers_missing_and_idle_workers(self):
        # Planned 4 workers; only one reports, busy half the kernel.
        report = _report([_shard(1, 0.2, 0.3, compute=0.3)], workers=4)
        profile = profile_report(report)
        assert profile.observed_workers == 1
        assert profile.workers == 4
        # 3 silent workers x 0.6 plus the reporter's idle 0.3, over 4.
        assert profile.seconds["straggler"] == pytest.approx(
            (3 * 0.6 + 0.3) / 4
        )
        assert sum(profile.seconds.values()) == pytest.approx(profile.wall_s)

    def test_clock_skew_cannot_produce_negative_categories(self):
        # A shard claiming to start before the kernel phase and run past
        # its end — the clamps absorb it, the identity still holds.
        report = _report([_shard(1, 0.0, 2.0, compute=5.0)])
        profile = profile_report(report)
        assert all(v >= 0.0 for v in profile.seconds.values())
        assert sum(profile.seconds.values()) == pytest.approx(profile.wall_s)

    def test_amdahl_bound_and_top_cost(self):
        report = _report(
            [
                _shard(1, 0.2, 0.6, compute=0.6),
                _shard(2, 0.2, 0.6, compute=0.6),
            ]
        )
        profile = profile_report(report)
        # t1 = serial + compute = 0.4 + 1.2; ideal = 0.4 + 1.2/2
        assert profile.amdahl_attainable == pytest.approx(1.6 / 1.0)
        assert profile.achieved_speedup_estimate == pytest.approx(1.6 / 1.0)
        assert profile.top_cost in CATEGORIES

    def test_requires_a_trace_report(self):
        with pytest.raises(ValidationError):
            profile_report({"metrics": []})

    def test_requires_a_completed_sweep_span(self):
        report = _report([_shard(1, 0.2, 0.3, compute=0.2)])
        report["trace"][0]["duration_s"] = None
        with pytest.raises(ValidationError, match="sweep"):
            profile_report(report)

    def test_requires_a_parallel_kernel_phase(self):
        report = _report([_shard(1, 0.2, 0.3, compute=0.2)], workers=0)
        with pytest.raises(ValidationError, match="parallel"):
            profile_report(report)

    def test_requires_worker_events(self):
        with pytest.raises(ValidationError, match="events"):
            profile_report(_report([]))

    def test_reuse_split_from_sweep_attributes(self):
        report = _report([_shard(1, 0.2, 0.6, compute=0.5)])
        report["trace"][0]["attributes"].update(
            store_points=60,
            store_memory_points=10,
            store_disk_points=50,
            memo_points=5,
            fresh_points=35,
            store_chunks=3,
            delta_chunks=1,
            store_reuse_ratio=0.6,
        )
        profile = profile_report(report)
        assert profile.reuse == {
            "store_memory": 10,
            "store_disk": 50,
            "memo": 5,
            "fresh": 35,
            "store_chunks": 3,
            "delta_chunks": 1,
            "reuse_ratio": 0.6,
        }

    def test_no_store_attributes_means_no_reuse_section(self):
        profile = profile_report(_report([_shard(1, 0.2, 0.6, compute=0.5)]))
        assert profile.reuse is None

    def test_fully_reused_sweep_explained_in_kernel_error(self):
        report = _report([], workers=0)
        report["trace"][0]["children"] = []
        report["trace"][0]["attributes"].update(
            store_points=100,
            store_memory_points=0,
            store_disk_points=100,
            memo_points=0,
            fresh_points=0,
            store_reuse_ratio=1.0,
        )
        with pytest.raises(ValidationError, match="served entirely from reuse"):
            profile_report(report)


class TestRenderProfile:
    def test_page_has_attribution_workers_and_verdict(self):
        report = _report(
            [
                _shard(1, 0.2, 0.6, compute=0.5),
                _shard(2, 0.2, 0.6, compute=0.3, shm=0.1),
            ]
        )
        page = render_profile(profile_report(report))
        assert "wall-clock attribution" in page
        for category in CATEGORIES:
            assert category in page
        assert "per-worker kernel phase" in page
        assert "top cost center" in page
        assert "attainable" in page

    def test_missing_workers_noted(self):
        report = _report([_shard(1, 0.2, 0.3, compute=0.3)], workers=4)
        page = render_profile(profile_report(report))
        assert "only 1 of 4 planned workers" in page

    def test_reuse_section_rendered_when_present(self):
        report = _report([_shard(1, 0.2, 0.6, compute=0.5)])
        report["trace"][0]["attributes"].update(
            store_points=60,
            store_memory_points=10,
            store_disk_points=50,
            memo_points=5,
            fresh_points=35,
            store_chunks=3,
            delta_chunks=1,
            store_reuse_ratio=0.6,
        )
        page = render_profile(profile_report(report))
        assert "point provenance" in page
        assert "store (memory)" in page
        assert "store (disk)" in page
        assert "memoized" in page
        assert "1 stitched delta" in page

    def test_no_reuse_section_without_store(self):
        page = render_profile(
            profile_report(_report([_shard(1, 0.2, 0.6, compute=0.5)]))
        )
        assert "point provenance" not in page
