"""The trace-report pretty-printer on tricky span shapes and events."""

from __future__ import annotations

from repro.obs import trace
from repro.obs.manifest import build_manifest, build_report
from repro.obs.show import render_report


def _report_from_tracer(events=None) -> dict:
    manifest = build_manifest(["test"], command="test", tracer=trace.get_tracer())
    return build_report(
        manifest, tracer=trace.get_tracer(), registry=None, events=events
    )


class TestTraceSection:
    def test_multi_root_trees_all_render(self):
        trace.enable()
        for name in ("sweep:first", "sweep:second", "sweep:third"):
            with trace.span(name):
                with trace.span("chunk"):
                    pass
        text = render_report(_report_from_tracer())
        for name in ("sweep:first", "sweep:second", "sweep:third"):
            assert name in text
        # three roots mean three chunk rows, one per tree
        assert text.count("chunk") == 3

    def test_deeply_nested_tree_indents_every_level(self):
        trace.enable()
        depth = 12
        tracer = trace.get_tracer()
        spans = [tracer.span(f"level{d}") for d in range(depth)]
        for span in spans:
            span.__enter__()
        for span in reversed(spans):
            span.__exit__(None, None, None)
        text = render_report(_report_from_tracer())
        lines = {
            line.lstrip().split()[0]: len(line) - len(line.lstrip())
            for line in text.splitlines()
            if line.lstrip().startswith("level")
        }
        assert len(lines) == depth
        # indentation grows strictly with depth
        indents = [lines[f"level{d}"] for d in range(depth)]
        assert indents == sorted(indents)
        assert indents[0] < indents[-1]

    def test_open_span_renders_dash_duration(self):
        trace.enable()
        tracer = trace.get_tracer()
        open_span = tracer.span("still-open")
        open_span.__enter__()
        text = render_report(_report_from_tracer())
        open_span.__exit__(None, None, None)
        rows = [line for line in text.splitlines() if "still-open" in line]
        # the span-tree row shows "-" where a duration would be
        assert any(line.rstrip().endswith("-") for line in rows)


class TestEventsSection:
    def test_events_summarized_per_worker(self):
        trace.enable()
        with trace.span("sweep"):
            pass
        events = [
            {
                "name": "shard",
                "worker": 11,
                "seq": 0,
                "t_wall": 1.0,
                "dur_s": 0.5,
                "attrs": {"compute_s": 0.4, "shm_s": 0.05},
            },
            {
                "name": "heartbeat",
                "worker": 11,
                "seq": 1,
                "t_wall": 1.1,
                "dur_s": None,
            },
            {
                "name": "shard",
                "worker": 22,
                "seq": 0,
                "t_wall": 1.2,
                "dur_s": 0.25,
                "attrs": {"compute_s": 0.2, "shm_s": 0.0},
            },
        ]

        class _Log:
            def __len__(self):
                return len(events)

            def as_dicts(self, *, started_at=None):
                return events

        text = render_report(_report_from_tracer(events=_Log()))
        assert "worker events" in text
        assert "11" in text and "22" in text
        # compute milliseconds aggregate per worker
        assert "400" in text  # 0.4 s -> 400 ms for worker 11

    def test_report_without_events_has_no_worker_section(self):
        trace.enable()
        with trace.span("sweep"):
            pass
        text = render_report(_report_from_tracer())
        assert "worker events" not in text
