"""Tests for :mod:`repro.obs.trace`."""

from __future__ import annotations

from repro.obs import trace
from repro.obs.trace import NULL_SPAN, Tracer


class TestDisabled:
    def test_disabled_by_default(self):
        assert not trace.is_enabled()

    def test_span_returns_null_singleton(self):
        assert trace.span("anything", key="value") is NULL_SPAN

    def test_null_span_is_inert(self):
        with trace.span("x") as sp:
            sp.set(a=1).count("n", 5)
        assert sp is NULL_SPAN
        assert trace.get_tracer().roots == []

    def test_disable_keeps_collected_spans(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("kept"):
            pass
        tracer.disable()
        assert [s.name for s in tracer.roots] == ["kept"]


class TestNesting:
    def test_children_nest_under_open_span(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("sibling"):
                pass
        (root,) = tracer.roots
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner", "sibling"]
        assert [c.name for c in root.children[0].children] == ["leaf"]

    def test_sequential_roots(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]

    def test_walk_paths_and_depths(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        walked = [(depth, path) for depth, path, _ in tracer.walk()]
        assert walked == [(0, "a"), (1, "a/b")]


class TestSpanData:
    def test_duration_recorded(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("timed") as sp:
            pass
        assert sp.duration_s is not None and sp.duration_s >= 0.0

    def test_attributes_and_counters(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work", phase="test") as sp:
            sp.set(points=10)
            sp.count("evals", 3)
            sp.count("evals", 7)
        assert sp.attributes == {"phase": "test", "points": 10}
        assert sp.counters == {"evals": 10}

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        tracer.enable()
        try:
            with tracer.span("boom") as sp:
                raise ValueError("bad")
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("exception swallowed")
        assert sp.attributes["error"] == "ValueError: bad"
        assert sp.duration_s is not None
        assert tracer._stack == []  # stack unwound despite the raise

    def test_as_dict_relative_start_and_children(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer", k="v") as sp:
            sp.count("n", 2)
            with tracer.span("inner"):
                pass
        payload = sp.as_dict(origin_s=tracer.origin_s)
        assert payload["name"] == "outer"
        assert payload["start_s"] >= 0.0
        assert payload["attributes"] == {"k": "v"}
        assert payload["counters"] == {"n": 2}
        assert [c["name"] for c in payload["children"]] == ["inner"]


class TestGlobalState:
    def test_enable_disable_reset(self):
        trace.enable()
        assert trace.is_enabled()
        with trace.span("recorded"):
            pass
        trace.reset()
        assert not trace.is_enabled()
        assert trace.get_tracer().roots == []


class TestTracerReuse:
    """One tracer observing several consecutive sweeps — the notebook
    workflow, where nobody resets global state between runs."""

    def _sweep(self, explorer, grid):
        return explorer.explore_arrays(grid)

    def test_consecutive_sweeps_become_sequential_roots(self):
        from repro.core.design import DesignPoint
        from repro.core.scenario import EMBODIED_DOMINATED
        from repro.dse.batch import BatchExplorer
        from repro.dse.factories import SymmetricMulticoreFactory
        from repro.dse.grid import ParameterGrid

        trace.enable()
        grid = ParameterGrid({"cores": [1, 2, 4], "f": [0.5, 0.9]})
        explorer = BatchExplorer(
            factory=SymmetricMulticoreFactory(),
            baseline=DesignPoint.baseline("base"),
            weight=EMBODIED_DOMINATED,
        )
        first = self._sweep(explorer, grid)
        second = self._sweep(explorer, grid)  # warm re-sweep, same tracer
        tracer = trace.get_tracer()
        sweep_roots = [s for s in tracer.roots if s.name == "sweep"]
        assert len(sweep_roots) == 2
        for root in sweep_roots:
            assert root.duration_s is not None
        assert first.params == second.params
        # the second sweep starts after the first on the shared origin
        starts = [s.start_s for s in sweep_roots]
        assert starts[0] < starts[1]

    def test_reused_tracer_reports_render_every_sweep(self):
        from repro.obs.manifest import build_manifest, build_report
        from repro.obs.show import render_report

        trace.enable()
        for index in range(3):
            with trace.span("sweep", index=index):
                pass
        manifest = build_manifest(
            ["x"], command="x", tracer=trace.get_tracer()
        )
        text = render_report(
            build_report(manifest, tracer=trace.get_tracer())
        )
        assert text.count("sweep") >= 3

    def test_clear_between_sweeps_keeps_tracer_armed(self):
        trace.enable()
        tracer = trace.get_tracer()
        with tracer.span("first"):
            pass
        tracer.clear()
        assert tracer.enabled
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["second"]
