"""Property-based tests for the multicore laws."""

from __future__ import annotations

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.amdahl.asymmetric import AsymmetricMulticore
from repro.amdahl.dynamic import DynamicMulticore
from repro.amdahl.pollack import big_core_design
from repro.amdahl.symmetric import SymmetricMulticore

cores = st.integers(min_value=1, max_value=256)
fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
leakages = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestSymmetricInvariants:
    @given(cores, fractions, leakages)
    def test_speedup_bounds(self, n, f, gamma):
        s = SymmetricMulticore(n, f, gamma).speedup
        assert 1.0 - 1e-12 <= s <= n + 1e-9

    @given(cores, fractions, leakages)
    def test_power_energy_speedup_identity(self, n, f, gamma):
        mc = SymmetricMulticore(n, f, gamma)
        assert abs(mc.power - mc.energy * mc.speedup) < 1e-9 * max(1.0, mc.power)

    @given(cores, fractions, leakages)
    def test_energy_at_least_one(self, n, f, gamma):
        """Idle leakage can only add to the baseline unit energy."""
        assert SymmetricMulticore(n, f, gamma).energy >= 1.0 - 1e-12

    @given(cores, fractions, leakages)
    def test_power_bounded_by_all_cores_active(self, n, f, gamma):
        """Average power can never exceed N (all cores at full power)."""
        assert SymmetricMulticore(n, f, gamma).power <= n + 1e-9

    @given(cores, fractions)
    def test_zero_leakage_power_at_most_cores(self, n, f):
        mc = SymmetricMulticore(n, f, leakage=0.0)
        assert mc.power <= n + 1e-9
        assert abs(mc.energy - 1.0) < 1e-12

    @given(st.integers(min_value=2, max_value=128), fractions, leakages)
    def test_speedup_monotone_in_cores(self, n, f, gamma):
        smaller = SymmetricMulticore(n - 1, f, gamma).speedup
        larger = SymmetricMulticore(n, f, gamma).speedup
        assert larger >= smaller - 1e-12


class TestAsymmetricInvariants:
    @st.composite
    @staticmethod
    def asym_configs(draw):
        total = draw(st.integers(min_value=2, max_value=256))
        big = draw(st.integers(min_value=1, max_value=total - 1))
        f = draw(fractions)
        gamma = draw(leakages)
        return AsymmetricMulticore(total, big, f, gamma)

    @given(asym_configs())
    def test_power_energy_identity(self, mc):
        assert abs(mc.power - mc.energy * mc.speedup) < 1e-9 * max(1.0, mc.power)

    @given(asym_configs())
    def test_speedup_positive_and_bounded(self, mc):
        """Speedup is at least min(sqrt(M),1) on serial-only code and at
        most N on fully parallel code."""
        assert mc.speedup > 0.0
        assert mc.speedup <= mc.total_bces + 1e-9

    @given(asym_configs())
    def test_power_between_leakage_floor_and_all_active(self, mc):
        assert 0.0 < mc.power <= mc.total_bces + 1e-9

    @given(asym_configs())
    def test_one_bce_big_core_closed_form(self, mc):
        """With a 1-BCE big core the Hill-Marty asymmetric speedup is
        1 / ((1-f) + f/(N-1)): the big core runs serial code at unit
        speed and *idles* during the parallel phase (Woo-Lee's model),
        so only N-1 cores run parallel code — NOT the symmetric chip."""
        assume(mc.big_core_bces == 1)
        f = mc.parallel_fraction
        expected = 1.0 / ((1.0 - f) + f / (mc.total_bces - 1))
        assert abs(mc.speedup - expected) < 1e-9 * expected


class TestDynamicInvariants:
    @given(cores, fractions, leakages)
    def test_dominates_symmetric_performance(self, n, f, gamma):
        dyn = DynamicMulticore(n, f, gamma).speedup
        sym = SymmetricMulticore(n, f, gamma).speedup
        assert dyn >= sym - 1e-9

    @given(cores, fractions)
    def test_speedup_at_most_n(self, n, f):
        assert DynamicMulticore(n, f).speedup <= n + 1e-9

    @given(cores, fractions)
    def test_pollack_limit_serial(self, n, f):
        """Fully serial code on a dynamic chip is the big-core case."""
        assume(f == 0.0)
        dyn = DynamicMulticore(n, 0.0)
        assert abs(dyn.speedup - big_core_design(n).perf) < 1e-9
