"""Property-based parity: every columnar substrate kernel is bit-exact
with its scalar twin on arbitrary (valid) inputs — equality is ``==``,
never ``approx``."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amdahl.asymmetric import AsymmetricMulticore
from repro.amdahl.batch import (
    asymmetric_power,
    asymmetric_speedup,
    asymmetric_valid_mask,
    symmetric_energy,
    symmetric_power,
    symmetric_speedup,
)
from repro.amdahl.symmetric import SymmetricMulticore
from repro.core.design import DesignPoint
from repro.dvfs.batch import scale_design_arrays
from repro.dvfs.operating_point import DVFSConfig, scale_design
from repro.wafer.batch import (
    bose_einstein_yield_array,
    murphy_yield_array,
    normalized_footprint_array,
    poisson_yield_array,
    seeds_yield_array,
)
from repro.wafer.embodied import EmbodiedFootprintModel
from repro.wafer.yield_models import (
    BoseEinsteinYield,
    MurphyYield,
    PoissonYield,
    SeedsYield,
)

# Inside the de Vries validity region for a 300 mm wafer.
die_areas = st.lists(
    st.floats(min_value=1.0, max_value=1200.0, allow_nan=False),
    min_size=1,
    max_size=20,
)
#: Includes pathologically high densities — the Seeds/Murphy tails.
densities = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
fractions = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=20,
)
core_counts = st.lists(st.integers(min_value=1, max_value=1024), min_size=1, max_size=20)
multipliers = st.lists(
    st.floats(min_value=0.01, max_value=4.0, allow_nan=False),
    min_size=1,
    max_size=20,
)


class TestWaferKernelProperties:
    @given(die_areas, densities)
    def test_yield_models_bit_exact(self, areas, density):
        for batch_fn, model in (
            (poisson_yield_array, PoissonYield(defect_density_per_cm2=density)),
            (murphy_yield_array, MurphyYield(defect_density_per_cm2=density)),
            (seeds_yield_array, SeedsYield(defect_density_per_cm2=density)),
        ):
            batch = batch_fn(areas, density)
            assert batch.tolist() == [model.die_yield(a) for a in areas]

    @given(die_areas, densities, st.integers(min_value=1, max_value=12))
    def test_bose_einstein_bit_exact(self, areas, density, layers):
        model = BoseEinsteinYield(
            defect_density_per_cm2=density, critical_layers=layers
        )
        batch = bose_einstein_yield_array(areas, density, layers)
        assert batch.tolist() == [model.die_yield(a) for a in areas]

    @given(die_areas, st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=25)
    def test_normalized_footprint_bit_exact(self, areas, density):
        model = EmbodiedFootprintModel(
            yield_model=MurphyYield(defect_density_per_cm2=density)
        )
        batch = normalized_footprint_array(model, areas, 100.0)
        assert batch.tolist() == [
            model.normalized_footprint(a, 100.0) for a in areas
        ]


class TestAmdahlKernelProperties:
    @given(core_counts, st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_symmetric_bit_exact(self, cores, f):
        fs = np.full(len(cores), f)
        speedup = symmetric_speedup(cores, fs)
        energy = symmetric_energy(cores, fs)
        power = symmetric_power(cores, fs)
        for i, n in enumerate(cores):
            model = SymmetricMulticore(cores=n, parallel_fraction=f)
            assert speedup[i] == model.speedup
            assert energy[i] == model.energy
            assert power[i] == model.power

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=2, max_value=256),
                st.integers(min_value=1, max_value=256),
            ),
            min_size=1,
            max_size=20,
        ),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_asymmetric_mask_and_values_bit_exact(self, pairs, f):
        total = np.asarray([n for n, _ in pairs])
        big = np.asarray([m for _, m in pairs])
        mask = asymmetric_valid_mask(total, big)
        n, m = total[mask], big[mask]
        if len(n):
            fs = np.full(len(n), f)
            speedup = asymmetric_speedup(n, m, fs)
            power = asymmetric_power(n, m, fs)
            for i in range(len(n)):
                model = AsymmetricMulticore(
                    total_bces=int(n[i]),
                    big_core_bces=int(m[i]),
                    parallel_fraction=f,
                )
                assert speedup[i] == model.speedup
                assert power[i] == model.power
        # Mask is True exactly where the scalar constructor succeeds.
        assert mask.tolist() == [m_ < n_ for n_, m_ in pairs]


class TestDVFSKernelProperties:
    @given(
        multipliers,
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.booleans(),
    )
    def test_scale_design_bit_exact(self, ss, leakage_fraction, regulator):
        design = DesignPoint("chip", area=20.0, perf=2.0, power=3.0)
        config = DVFSConfig(leakage_fraction=leakage_fraction)
        areas, perfs, powers = scale_design_arrays(
            design, ss, config, include_regulator_area=regulator
        )
        for i, s in enumerate(ss):
            point = scale_design(
                design, s, config, include_regulator_area=regulator
            )
            assert areas[i] == point.area
            assert perfs[i] == point.perf
            assert powers[i] == point.power
