"""Property-based tests for the FOCAL core (NCF, classification,
intervals, Pareto)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classify import Sustainability, classify, classify_values
from repro.core.design import DesignPoint
from repro.core.ncf import ncf, ncf_band, ncf_from_ratios
from repro.core.pareto import ParetoPoint, pareto_frontier
from repro.core.scenario import E2OWeight, UseScenario
from repro.core.uncertainty import Interval

positive = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)
alphas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
scenarios = st.sampled_from(list(UseScenario))


@st.composite
def designs(draw, name: str = "d") -> DesignPoint:
    return DesignPoint(
        name=name,
        area=draw(positive),
        perf=draw(positive),
        power=draw(positive),
    )


class TestNCFProperties:
    @given(designs(), alphas, scenarios)
    def test_self_comparison_is_one(self, design, alpha, scenario):
        assert abs(ncf(design, design, scenario, alpha) - 1.0) < 1e-9

    @given(designs("x"), designs("y"), alphas, scenarios)
    def test_ncf_positive(self, x, y, alpha, scenario):
        assert ncf(x, y, scenario, alpha) > 0.0

    @given(designs("x"), designs("y"), alphas, scenarios)
    def test_affine_in_alpha(self, x, y, alpha, scenario):
        """NCF(alpha) = alpha*A + (1-alpha)*O: interpolation between the
        alpha=0 and alpha=1 endpoints is exact."""
        at0 = ncf(x, y, scenario, 0.0)
        at1 = ncf(x, y, scenario, 1.0)
        expected = alpha * at1 + (1 - alpha) * at0
        assert abs(ncf(x, y, scenario, alpha) - expected) < 1e-9 * max(1.0, expected)

    @given(designs("x"), designs("y"), alphas)
    def test_scenarios_coincide_iff_same_perf_ratio(self, x, y, alpha):
        fw = ncf(x, y, UseScenario.FIXED_WORK, alpha)
        ft = ncf(x, y, UseScenario.FIXED_TIME, alpha)
        if abs(x.perf - y.perf) < 1e-12:
            assert abs(fw - ft) < 1e-9
        # alpha = 1 kills the operational term entirely:
        if alpha == 1.0:
            assert abs(fw - ft) < 1e-12

    @given(positive, positive, alphas)
    def test_ncf_between_its_components(self, area_ratio, op_ratio, alpha):
        value = ncf_from_ratios(area_ratio, op_ratio, alpha)
        assert min(area_ratio, op_ratio) - 1e-12 <= value
        assert value <= max(area_ratio, op_ratio) + 1e-12

    @given(designs("x"), designs("y"), scenarios,
           st.floats(min_value=0.0, max_value=0.5), st.floats(min_value=0.0, max_value=0.4))
    def test_band_contains_nominal_and_widens_with_spread(
        self, x, y, scenario, alpha_base, spread
    ):
        narrow = E2OWeight("n", alpha=alpha_base + 0.25, spread=spread / 2)
        wide = E2OWeight("w", alpha=alpha_base + 0.25, spread=spread)
        band_narrow = ncf_band(x, y, scenario, narrow)
        band_wide = ncf_band(x, y, scenario, wide)
        assert band_wide.low <= band_narrow.low + 1e-12
        assert band_wide.high >= band_narrow.high - 1e-12
        assert band_wide.low <= band_wide.nominal <= band_wide.high


class TestClassificationProperties:
    @given(designs("x"), designs("y"), alphas, scenarios)
    def test_jensen_one_direction_below_one(self, x, y, alpha, scenario):
        """Per axis: NCF(X,Y) < 1 implies NCF(Y,X) > 1 (Jensen: 1/t is
        convex, so the affine mix of reciprocals exceeds the reciprocal
        of the mix). The reverse does NOT hold — both directions can be
        above 1 — which is why FOCAL's classification is not
        antisymmetric in general."""
        forward = ncf(x, y, scenario, alpha)
        backward = ncf(y, x, scenario, alpha)
        # Relative slack: at alpha extremes NCF degenerates to a pure
        # ratio, where backward == 1/forward only up to rounding — an
        # absolute epsilon drowns when the ratio is ~1e7.
        assert backward >= (1.0 / forward) * (1.0 - 1e-12)

    @given(designs("x"), designs("y"), alphas)
    def test_strong_forward_implies_less_backward(self, x, y, alpha):
        """A strictly strongly sustainable X makes Y strictly less
        sustainable — the one classification implication that survives
        the affine (non-ratio) structure of NCF."""
        fw = ncf(x, y, UseScenario.FIXED_WORK, alpha)
        ft = ncf(x, y, UseScenario.FIXED_TIME, alpha)
        if fw < 1.0 - 1e-6 and ft < 1.0 - 1e-6:
            backward = classify(y, x, alpha).category
            assert backward is Sustainability.LESS

    @given(
        st.floats(min_value=0.01, max_value=10, allow_nan=False),
        st.floats(min_value=0.01, max_value=10, allow_nan=False),
    )
    def test_classify_values_total(self, fw, ft):
        assert classify_values(fw, ft) in set(Sustainability)

    @given(designs("x"), designs("y"))
    def test_neutral_iff_all_nfcs_one(self, x, y):
        category = classify(x, y, 0.5).category
        if category is Sustainability.NEUTRAL:
            assert abs(ncf(x, y, UseScenario.FIXED_WORK, 0.5) - 1.0) < 1e-6
            assert abs(ncf(x, y, UseScenario.FIXED_TIME, 0.5) - 1.0) < 1e-6


class TestMixProperties:
    shares = st.lists(
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=5,
    )

    @given(st.data(), shares)
    def test_mix_brackets_phase_extremes(self, data, raw_shares):
        from repro.core.mix import time_weighted_mix

        total = sum(raw_shares)
        shares = [s / total for s in raw_shares]
        phases = [
            (
                DesignPoint(
                    f"p{i}",
                    area=1.0,
                    perf=data.draw(positive),
                    power=data.draw(positive),
                ),
                share,
            )
            for i, share in enumerate(shares)
        ]
        mix = time_weighted_mix(phases, share_tolerance=1e-6)
        powers = [d.power for d, _ in phases]
        perfs = [d.perf for d, _ in phases]
        assert min(powers) - 1e-9 <= mix.power <= max(powers) + 1e-9
        assert min(perfs) - 1e-9 <= mix.perf <= max(perfs) + 1e-9

    @given(st.data())
    def test_mix_order_invariance(self, data):
        from repro.core.mix import time_weighted_mix

        a = DesignPoint("a", area=1.0, perf=data.draw(positive), power=data.draw(positive))
        b = DesignPoint("b", area=1.0, perf=data.draw(positive), power=data.draw(positive))
        forward = time_weighted_mix([(a, 0.3), (b, 0.7)], name="m")
        backward = time_weighted_mix([(b, 0.7), (a, 0.3)], name="m")
        assert abs(forward.power - backward.power) < 1e-12 * max(1.0, forward.power)
        assert abs(forward.perf - backward.perf) < 1e-12 * max(1.0, forward.perf)


class TestMetricProperties:
    from repro.core.metrics import ClassicMetric

    metrics = st.sampled_from(list(ClassicMetric))

    @given(designs("x"), designs("y"), metrics)
    def test_ratio_reciprocity(self, x, y, metric):
        """metric_ratio is a true ratio: forward x backward = 1."""
        from repro.core.metrics import metric_ratio

        forward = metric_ratio(x, y, metric)
        backward = metric_ratio(y, x, metric)
        assert abs(forward * backward - 1.0) < 1e-9

    @given(designs("x"), metrics)
    def test_self_ratio_is_one(self, x, metric):
        from repro.core.metrics import metric_ratio

        assert abs(metric_ratio(x, x, metric) - 1.0) < 1e-12

    @given(designs("x"), designs("y"))
    def test_energy_metric_matches_fixed_work_alpha_zero(self, x, y):
        """The ENERGY metric's goodness is exactly 1/NCF at alpha=0
        fixed-work — the two frameworks agree where they overlap."""
        from repro.core.metrics import ClassicMetric, metric_ratio

        goodness = metric_ratio(x, y, ClassicMetric.ENERGY)
        ncf_value = ncf(x, y, UseScenario.FIXED_WORK, 0.0)
        assert abs(goodness * ncf_value - 1.0) < 1e-9


class TestIntervalProperties:
    finite = st.floats(min_value=-100, max_value=100, allow_nan=False)

    @given(finite, finite, finite, finite)
    def test_add_contains_pointwise_sums(self, a, b, c, d):
        left = Interval(min(a, b), max(a, b))
        right = Interval(min(c, d), max(c, d))
        total = left + right
        assert total.contains(left.low + right.low)
        assert total.contains(left.high + right.high)
        assert total.contains(left.midpoint + right.midpoint)

    @given(finite, finite, finite, finite)
    def test_mul_is_tight_hull(self, a, b, c, d):
        left = Interval(min(a, b), max(a, b))
        right = Interval(min(c, d), max(c, d))
        product = left * right
        corners = [
            left.low * right.low,
            left.low * right.high,
            left.high * right.low,
            left.high * right.high,
        ]
        assert product.low == min(corners)
        assert product.high == max(corners)

    @given(finite, finite)
    def test_sub_self_contains_zero(self, a, b):
        iv = Interval(min(a, b), max(a, b))
        assert (iv - iv).contains(0.0)


class TestParetoProperties:
    points = st.lists(
        st.builds(
            ParetoPoint,
            name=st.text(min_size=1, max_size=4),
            perf=st.floats(min_value=0.1, max_value=10, allow_nan=False),
            footprint=st.floats(min_value=0.1, max_value=10, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )

    @given(points)
    @settings(max_examples=60)
    def test_frontier_members_not_dominated(self, pts):
        frontier = pareto_frontier(pts)
        for member in frontier:
            assert not any(other.dominates(member) for other in pts)

    @given(points)
    @settings(max_examples=60)
    def test_every_point_dominated_by_or_on_frontier(self, pts):
        frontier = pareto_frontier(pts)
        for point in pts:
            on_frontier = any(
                point.perf == m.perf and point.footprint == m.footprint
                for m in frontier
            )
            dominated = any(m.dominates(point) for m in frontier)
            assert on_frontier or dominated

    @given(points)
    @settings(max_examples=60)
    def test_frontier_sorted_and_monotone(self, pts):
        frontier = pareto_frontier(pts)
        perfs = [p.perf for p in frontier]
        feet = [p.footprint for p in frontier]
        assert perfs == sorted(perfs)
        assert feet == sorted(feet)
