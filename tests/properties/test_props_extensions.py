"""Property-based tests for the extension modules (rebound, lifetime,
chiplets, roadmap)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design import DesignPoint
from repro.core.ncf import ncf
from repro.core.scenario import UseScenario
from repro.lifetime.replacement import DeviceFootprint, footprint_per_work, indifference_point
from repro.multichip.chiplets import ChipletPartition, evaluate_partition
from repro.rebound.model import ReboundModel, rebound_ncf
from repro.technode.roadmap import RoadmapPolicy, roadmap

positive = st.floats(min_value=1e-2, max_value=1e2, allow_nan=False)
alphas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
elasticities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def designs(draw, name: str = "d") -> DesignPoint:
    return DesignPoint(
        name=name, area=draw(positive), perf=draw(positive), power=draw(positive)
    )


class TestReboundProperties:
    @given(designs("x"), designs("y"), alphas, elasticities)
    def test_bracketed_by_scenarios(self, x, y, alpha, r):
        """For any elasticity, the rebound NCF lies between the
        fixed-work and fixed-time values."""
        value = rebound_ncf(x, y, alpha, ReboundModel(r))
        fw = ncf(x, y, UseScenario.FIXED_WORK, alpha)
        ft = ncf(x, y, UseScenario.FIXED_TIME, alpha)
        lo, hi = sorted((fw, ft))
        assert lo - 1e-9 <= value <= hi + 1e-9

    @given(designs("x"), designs("y"), alphas)
    def test_endpoints_exact(self, x, y, alpha):
        assert rebound_ncf(x, y, alpha, ReboundModel(0.0)) == (
            ncf(x, y, UseScenario.FIXED_WORK, alpha)
        )
        ft = ncf(x, y, UseScenario.FIXED_TIME, alpha)
        assert abs(rebound_ncf(x, y, alpha, ReboundModel(1.0)) - ft) < 1e-9 * max(1, ft)

    @given(designs("x"), designs("y"), alphas, elasticities)
    def test_deployment_rebound_never_helps(self, x, y, alpha, r):
        """Extra deployed devices can only add footprint."""
        base = rebound_ncf(x, y, alpha, ReboundModel(r, 0.0))
        stressed = rebound_ncf(x, y, alpha, ReboundModel(r, 1.0))
        if x.perf >= y.perf:
            assert stressed >= base - 1e-9
        else:
            # A *slower* design shrinks the fleet under this elasticity.
            assert stressed <= base + 1e-9


class TestLifetimeProperties:
    rates = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)
    embodieds = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)

    @given(embodieds, rates, rates, embodieds)
    def test_indifference_point_is_a_crossing(self, emb_new, rate_old, rate_new, sunk):
        old = DeviceFootprint("old", embodied=sunk, operational_rate=rate_old)
        new = DeviceFootprint("new", embodied=emb_new, operational_rate=rate_new)
        t_star = indifference_point(old, new)
        if t_star is None:
            # Either no saving, or a saving so tiny the payback time
            # overflows — both mean "never pays back".
            assert rate_new >= rate_old or emb_new / (rate_old - rate_new) > 1e300
        else:
            keeping = rate_old * t_star
            replacing = new.total_footprint(t_star)
            assert abs(keeping - replacing) < 1e-6 * max(1.0, replacing)

    @given(
        st.floats(min_value=0.01, max_value=1e3),
        st.floats(min_value=0.0, max_value=1e3),
        st.floats(min_value=0.5, max_value=20.0),
        st.floats(min_value=0.5, max_value=20.0),
    )
    @settings(max_examples=60)
    def test_amortization_monotone(self, embodied, rate, t1, t2):
        device = DeviceFootprint("d", embodied=embodied, operational_rate=rate)
        short, long_ = sorted((t1, t2))
        assert footprint_per_work(device, long_) <= (
            footprint_per_work(device, short) + 1e-9
        )


class TestChipletProperties:
    ks = st.integers(min_value=1, max_value=8)
    areas = st.floats(min_value=50.0, max_value=1200.0, allow_nan=False)

    @given(ks, areas)
    @settings(max_examples=60)
    def test_yield_improves_with_splitting(self, k, area):
        if k == 1:
            return
        mono = evaluate_partition(ChipletPartition(1, area))
        split = evaluate_partition(ChipletPartition(k, area))
        assert split.die_yield >= mono.die_yield - 1e-12

    @given(ks, areas)
    @settings(max_examples=60)
    def test_performance_at_most_monolithic(self, k, area):
        outcome = evaluate_partition(ChipletPartition(k, area))
        assert outcome.performance <= 1.0 + 1e-12

    @given(ks, areas)
    @settings(max_examples=60)
    def test_silicon_grows_with_interfaces(self, k, area):
        part = ChipletPartition(k, area)
        assert part.total_silicon_mm2 >= area - 1e-9


class TestRoadmapProperties:
    gens = st.integers(min_value=0, max_value=6)
    fracs = st.floats(min_value=0.0, max_value=0.99, allow_nan=False)

    @given(gens, fracs)
    @settings(max_examples=40)
    def test_shrink_embodied_below_constant_area(self, g, f):
        shrink = roadmap(RoadmapPolicy.SHRINK, g, parallel_fraction=f)
        grow = roadmap(RoadmapPolicy.CONSTANT_AREA, g, parallel_fraction=f)
        for s, c in zip(shrink, grow):
            assert s.embodied <= c.embodied + 1e-12

    @given(gens, fracs)
    @settings(max_examples=40)
    def test_constant_area_never_slower(self, g, f):
        shrink = roadmap(RoadmapPolicy.SHRINK, g, parallel_fraction=f)
        grow = roadmap(RoadmapPolicy.CONSTANT_AREA, g, parallel_fraction=f)
        for s, c in zip(shrink, grow):
            assert c.perf >= s.perf - 1e-9

    @given(gens, fracs)
    @settings(max_examples=40)
    def test_energy_identity(self, g, f):
        for policy in RoadmapPolicy:
            for p in roadmap(policy, g, parallel_fraction=f):
                assert abs(p.energy * p.perf - p.power) < 1e-9 * max(1.0, p.power)
