"""Property-based tests for the reporting layer."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.report.export import figure_from_json, figure_to_csv, figure_to_json
from repro.report.series import FigureResult, Panel, Point, Series
from repro.report.table import format_table

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
labels = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=8
)
names = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
    min_size=1,
    max_size=12,
)


@st.composite
def figures(draw) -> FigureResult:
    def series() -> st.SearchStrategy[Series]:
        return st.builds(
            Series,
            name=names,
            points=st.lists(
                st.builds(Point, x=finite, y=finite, label=labels),
                min_size=1,
                max_size=6,
            ).map(tuple),
        )

    panels = draw(
        st.lists(
            st.builds(
                Panel,
                name=names,
                x_label=names,
                y_label=names,
                series=st.lists(series(), min_size=1, max_size=3).map(tuple),
            ),
            min_size=1,
            max_size=3,
        )
    )
    return FigureResult(
        figure_id=draw(names),
        caption=draw(labels),
        panels=tuple(panels),
        notes=tuple(draw(st.lists(labels, max_size=2))),
    )


class TestFigureRoundTrip:
    @given(figures())
    @settings(max_examples=50)
    def test_json_round_trip_identity(self, figure):
        assert figure_from_json(figure_to_json(figure)) == figure

    @given(figures())
    @settings(max_examples=50)
    def test_csv_row_count(self, figure):
        csv_text = figure_to_csv(figure)
        # Header plus one row per point; labels are CSV-escaped so rows
        # with embedded newlines still count as one record.
        import csv as csv_module
        import io

        rows = list(csv_module.reader(io.StringIO(csv_text)))
        assert len(rows) == 1 + figure.total_points


class TestTableProperties:
    cells = st.one_of(finite, names, st.booleans())

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=6),
        st.data(),
    )
    @settings(max_examples=50)
    def test_all_lines_same_width(self, columns, rows, data):
        headers = [f"col{i}" for i in range(columns)]
        body = [
            [data.draw(self.cells) for _ in range(columns)] for _ in range(rows)
        ]
        out = format_table(headers, body)
        widths = {len(line) for line in out.splitlines()}
        assert len(widths) == 1
