"""Property-based store reuse: whatever chunking, worker count or grid
slicing the writer and reader pick, a store round-trip is bit-exact and
the reader evaluates exactly the points the writer never stored."""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design import DesignPoint
from repro.core.scenario import EMBODIED_DOMINATED
from repro.dse.batch import BatchExplorer
from repro.dse.factories import SymmetricMulticoreFactory
from repro.dse.grid import ParameterGrid, linear_range
from repro.dse.store import ResultStore, point_store_key

BASELINE = DesignPoint.baseline("1-BCE single core")
FRACTIONS = linear_range(0.5, 0.99, 6)


def _explorer(chunk_size: int) -> BatchExplorer:
    return BatchExplorer(
        factory=SymmetricMulticoreFactory(),
        baseline=BASELINE,
        weight=EMBODIED_DOMINATED,
        chunk_size=chunk_size,
    )


def _grid(cores: list[int]) -> ParameterGrid:
    return ParameterGrid({"cores": [float(c) for c in cores], "f": FRACTIONS})


@settings(max_examples=20, deadline=None)
@given(
    writer_chunk=st.integers(min_value=1, max_value=40),
    reader_chunk=st.integers(min_value=1, max_value=40),
    cores=st.lists(
        st.integers(min_value=1, max_value=64),
        min_size=1,
        max_size=8,
        unique=True,
    ),
)
def test_reader_chunking_never_changes_results(
    writer_chunk, reader_chunk, cores
):
    grid = _grid(cores)
    with tempfile.TemporaryDirectory() as root:
        cold = _explorer(writer_chunk).explore_arrays(
            grid, store=ResultStore(root)
        )
        reader = _explorer(reader_chunk)
        warm = reader.explore_arrays(grid, store=ResultStore(root))
        engine = reader.last_sweep
        assert engine.fresh_points == 0
        assert engine.store_points == len(grid)
        assert warm.designs == cold.designs
        assert warm.perf.tobytes() == cold.perf.tobytes()
        assert warm.ncf_fixed_work.tobytes() == cold.ncf_fixed_work.tobytes()
        assert warm.ncf_fixed_time.tobytes() == cold.ncf_fixed_time.tobytes()


@settings(max_examples=15, deadline=None)
@given(
    writer_chunk=st.integers(min_value=1, max_value=40),
    reader_chunk=st.integers(min_value=1, max_value=40),
    stored_cores=st.lists(
        st.integers(min_value=1, max_value=64),
        min_size=1,
        max_size=6,
        unique=True,
    ),
    swept_cores=st.lists(
        st.integers(min_value=1, max_value=64),
        min_size=1,
        max_size=6,
        unique=True,
    ),
)
def test_delta_sweep_evaluates_exactly_the_new_points(
    writer_chunk, reader_chunk, stored_cores, swept_cores
):
    """Arbitrarily overlapping grids: fresh evaluations == points the
    first sweep never saw, and the union run matches a cold sweep."""
    with tempfile.TemporaryDirectory() as root:
        _explorer(writer_chunk).explore_arrays(
            _grid(stored_cores), store=ResultStore(root)
        )
        swept = _grid(swept_cores)
        reader = _explorer(reader_chunk)
        delta = reader.explore_arrays(swept, store=ResultStore(root))
        new_cores = set(swept_cores) - set(stored_cores)
        assert reader.last_sweep.fresh_points == len(new_cores) * len(
            FRACTIONS
        )
        cold = _explorer(writer_chunk).explore_arrays(swept)
        assert delta.designs == cold.designs
        assert delta.ncf_fixed_work.tobytes() == cold.ncf_fixed_work.tobytes()
        assert delta.ncf_fixed_time.tobytes() == cold.ncf_fixed_time.tobytes()


@given(
    params=st.dictionaries(
        st.sampled_from(["cores", "f", "mode", "flag", "none"]),
        st.one_of(
            st.booleans(),
            st.integers(min_value=-10, max_value=10),
            st.floats(allow_nan=False),
            st.text(max_size=8),
            st.none(),
        ),
        min_size=1,
        max_size=5,
    )
)
def test_point_keys_are_axis_order_free(params):
    reordered = dict(reversed(list(params.items())))
    assert point_store_key(params) == point_store_key(reordered)
