"""Property-based tests for the accelerator, cache, and DVFS substrates."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.accel.accelerator import AcceleratedSystem, Accelerator, breakeven_utilization
from repro.cache.hierarchy import CachedProcessor, MemoryBoundWorkload
from repro.core.design import DesignPoint
from repro.core.scenario import UseScenario
from repro.dvfs.operating_point import DVFSConfig, scale_design
from repro.dvfs.power_cap import capped_frequency_multiplier

utilizations = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
alphas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def accelerators(draw) -> Accelerator:
    return Accelerator(
        area_overhead=draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False)),
        energy_advantage=draw(st.floats(min_value=1.0, max_value=1000.0)),
        speedup=draw(st.floats(min_value=0.25, max_value=8.0)),
    )


class TestAcceleratorProperties:
    @given(accelerators(), utilizations)
    def test_energy_power_perf_identity(self, acc, t):
        system = AcceleratedSystem(acc, t)
        assert abs(system.energy * system.perf - system.power) < 1e-9 * max(
            1.0, system.power
        )

    @given(accelerators(), utilizations, utilizations, alphas)
    def test_ncf_antitone_in_utilization_for_advantaged_accel(self, acc, t1, t2, alpha):
        """With energy_advantage >= 1 and speedup >= 1, more use never
        hurts under fixed-work."""
        if acc.speedup < 1.0:
            return
        low, high = sorted((t1, t2))
        ncf_low = AcceleratedSystem(acc, low).ncf(alpha, UseScenario.FIXED_WORK)
        ncf_high = AcceleratedSystem(acc, high).ncf(alpha, UseScenario.FIXED_WORK)
        assert ncf_high <= ncf_low + 1e-9

    @given(accelerators(), alphas)
    def test_breakeven_is_boundary(self, acc, alpha):
        t = breakeven_utilization(acc, alpha, UseScenario.FIXED_WORK)
        if t is None:
            assert AcceleratedSystem(acc, 1.0).ncf(alpha, UseScenario.FIXED_WORK) > 1.0
        elif t == 0.0:
            assert AcceleratedSystem(acc, 0.0).ncf(alpha, UseScenario.FIXED_WORK) <= 1.0
        else:
            value = AcceleratedSystem(acc, t).ncf(alpha, UseScenario.FIXED_WORK)
            assert abs(value - 1.0) < 1e-6


class TestCacheProperties:
    sizes = st.floats(min_value=0.25, max_value=64.0, allow_nan=False)

    @given(sizes)
    def test_power_energy_time_identity(self, size):
        proc = CachedProcessor(llc_size_mb=size)
        assert abs(proc.power * proc.exec_time - proc.energy) < 1e-9

    @given(sizes, sizes)
    def test_perf_monotone_in_size(self, s1, s2):
        small, large = sorted((s1, s2))
        assert (
            CachedProcessor(llc_size_mb=large).perf
            >= CachedProcessor(llc_size_mb=small).perf - 1e-12
        )

    @given(
        sizes,
        st.floats(min_value=0.0, max_value=0.95, allow_nan=False),
    )
    def test_memory_share_shapes_gain(self, size, share):
        """Perf gain over baseline is bounded by the memory share:
        perf <= 1 / (1 - share)."""
        workload = MemoryBoundWorkload(
            memory_time_share=share, memory_energy_share=share, cache_energy_share=0.04
        )
        proc = CachedProcessor(llc_size_mb=max(size, 1.0), workload=workload)
        assert proc.perf <= 1.0 / (1.0 - share) + 1e-9


class TestDVFSProperties:
    multipliers = st.floats(min_value=0.2, max_value=3.0, allow_nan=False)
    leakage_fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

    @given(multipliers, leakage_fractions)
    def test_power_between_linear_and_cubic(self, s, leak):
        base = DesignPoint.baseline()
        config = DVFSConfig(leakage_fraction=leak, regulator_area_overhead=0.0)
        scaled = scale_design(base, s, config)
        low, high = sorted((s, s**3))
        assert low - 1e-9 <= scaled.power <= high + 1e-9

    @given(multipliers)
    def test_power_cap_round_trip(self, s):
        """Solving for the multiplier that yields the power a multiplier
        produces returns that multiplier."""
        base_power = 2.0
        produced = (s / 1.0) ** 3 * base_power
        recovered = capped_frequency_multiplier(base_power, produced, 1.0)
        assert abs(recovered - s) < 1e-9

    @given(multipliers, leakage_fractions)
    def test_downscaling_saves_energy(self, s, leak):
        if s >= 1.0:
            return
        base = DesignPoint.baseline()
        config = DVFSConfig(leakage_fraction=leak, regulator_area_overhead=0.0)
        scaled = scale_design(base, s, config)
        assert scaled.energy <= base.energy + 1e-9
