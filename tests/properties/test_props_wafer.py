"""Property-based tests for wafer geometry and yield models."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.wafer.binning import BinningModel
from repro.wafer.embodied import EmbodiedFootprintModel
from repro.wafer.geometry import Wafer
from repro.wafer.yield_models import (
    BoseEinsteinYield,
    MurphyYield,
    PoissonYield,
    SeedsYield,
)

# Stay inside the de Vries validity region for a 300 mm wafer (~1670 mm^2).
die_areas = st.floats(min_value=1.0, max_value=1200.0, allow_nan=False)
densities = st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
model_builders = st.sampled_from(
    [PoissonYield, MurphyYield, SeedsYield, lambda d: BoseEinsteinYield(d, 8)]
)


class TestGeometryProperties:
    @given(die_areas)
    def test_cpw_positive_and_below_area_ratio(self, area):
        wafer = Wafer(300.0)
        cpw = wafer.gross_dies(area)
        assert 0.0 < cpw < wafer.area_mm2 / area

    @given(die_areas, die_areas)
    def test_cpw_antitone(self, a1, a2):
        wafer = Wafer(300.0)
        small, large = sorted((a1, a2))
        assert wafer.gross_dies(small) >= wafer.gross_dies(large) - 1e-9


class TestYieldProperties:
    @given(model_builders, densities, die_areas)
    def test_yield_in_unit_interval(self, builder, density, area):
        model = builder(density)
        y = model.die_yield(area)
        assert 0.0 < y <= 1.0

    @given(model_builders, densities, die_areas, die_areas)
    def test_yield_antitone_in_area(self, builder, density, a1, a2):
        model = builder(density)
        small, large = sorted((a1, a2))
        assert model.die_yield(small) >= model.die_yield(large) - 1e-12

    @given(densities, die_areas)
    def test_model_ordering_poisson_murphy_seeds(self, density, area):
        """For the same A*D: Poisson <= Murphy <= Seeds (decreasingly
        pessimistic defect-clustering assumptions)."""
        p = PoissonYield(density).die_yield(area)
        m = MurphyYield(density).die_yield(area)
        s = SeedsYield(density).die_yield(area)
        assert p <= m + 1e-12
        assert m <= s + 1e-12


class TestEmbodiedProperties:
    @given(die_areas, die_areas)
    def test_normalized_footprint_monotone(self, a1, a2):
        model = EmbodiedFootprintModel(yield_model=MurphyYield())
        small, large = sorted((a1, a2))
        assert model.normalized_footprint(
            small
        ) <= model.normalized_footprint(large) + 1e-9

    @given(die_areas)
    def test_normalization_consistency(self, area):
        """normalized(a, ref) * normalized(ref, a) == 1."""
        model = EmbodiedFootprintModel(yield_model=MurphyYield())
        forward = model.normalized_footprint(area, 100.0)
        backward = model.normalized_footprint(100.0, area)
        assert abs(forward * backward - 1.0) < 1e-9


class TestBinningProperties:
    @given(
        st.integers(min_value=1, max_value=32),
        densities,
        die_areas,
    )
    def test_tolerance_monotone(self, blocks, density, area):
        fractions = [
            BinningModel(blocks, k, density).sellable_fraction(area)
            for k in range(blocks + 1)
        ]
        for lower, higher in zip(fractions, fractions[1:]):
            assert higher >= lower - 1e-12
        assert fractions[-1] <= 1.0 + 1e-12

    @given(st.integers(min_value=1, max_value=32), densities, die_areas)
    def test_full_tolerance_is_certain_sale(self, blocks, density, area):
        model = BinningModel(blocks, blocks, density)
        assert abs(model.sellable_fraction(area) - 1.0) < 1e-9
