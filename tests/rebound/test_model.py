"""Unit tests for explicit rebound-effect modeling."""

from __future__ import annotations

import pytest

from repro.core.classify import Sustainability
from repro.core.design import DesignPoint
from repro.core.errors import ValidationError
from repro.core.ncf import ncf
from repro.core.scenario import UseScenario
from repro.rebound.model import (
    ReboundModel,
    classify_with_rebound,
    rebound_ncf,
    usage_rebound_tipping_point,
)

FW = UseScenario.FIXED_WORK
FT = UseScenario.FIXED_TIME


@pytest.fixture
def fast_efficient(baseline) -> DesignPoint:
    """Faster and more energy-efficient, slightly more power."""
    return DesignPoint("fast", area=1.0, perf=1.5, power=1.2)


class TestEndpoints:
    def test_zero_elasticity_is_fixed_work(self, fast_efficient, baseline):
        for alpha in (0.2, 0.5, 0.8):
            assert rebound_ncf(
                fast_efficient, baseline, alpha, ReboundModel(0.0)
            ) == pytest.approx(ncf(fast_efficient, baseline, FW, alpha))

    def test_unit_elasticity_is_fixed_time(self, fast_efficient, baseline):
        for alpha in (0.2, 0.5, 0.8):
            assert rebound_ncf(
                fast_efficient, baseline, alpha, ReboundModel(1.0)
            ) == pytest.approx(ncf(fast_efficient, baseline, FT, alpha))

    def test_interpolation_monotone_for_faster_design(self, fast_efficient, baseline):
        values = [
            rebound_ncf(fast_efficient, baseline, 0.2, ReboundModel(r))
            for r in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert values == sorted(values)

    def test_no_rebound_effect_for_equal_perf(self, baseline):
        same_speed = DesignPoint("same", area=0.9, perf=1.0, power=0.8)
        for r in (0.0, 0.5, 1.0):
            assert rebound_ncf(
                same_speed, baseline, 0.5, ReboundModel(r)
            ) == pytest.approx(ncf(same_speed, baseline, FW, 0.5))


class TestDeploymentRebound:
    def test_fleet_growth_scales_both_terms(self, fast_efficient, baseline):
        no_deploy = rebound_ncf(fast_efficient, baseline, 0.5, ReboundModel(0.0, 0.0))
        with_deploy = rebound_ncf(
            fast_efficient, baseline, 0.5, ReboundModel(0.0, 1.0)
        )
        fleet = fast_efficient.perf  # gain**1
        assert with_deploy == pytest.approx(no_deploy * fleet)

    def test_jevons_paradox_reproduced(self, fast_efficient, baseline):
        """An efficiency win flips into a net loss once deployment
        rebound is strong enough — Jevons' paradox in one assert."""
        assert rebound_ncf(fast_efficient, baseline, 0.5, ReboundModel(0.0, 0.0)) < 1.0
        assert rebound_ncf(fast_efficient, baseline, 0.5, ReboundModel(1.0, 1.0)) > 1.0


class TestClassification:
    def test_matches_standard_classification_without_deployment(
        self, fast_efficient, baseline
    ):
        from repro.core.classify import classify

        for alpha in (0.2, 0.8):
            assert classify_with_rebound(fast_efficient, baseline, alpha) is (
                classify(fast_efficient, baseline, alpha).category
            )

    def test_deployment_rebound_degrades_category(self, fast_efficient, baseline):
        relaxed = classify_with_rebound(fast_efficient, baseline, 0.2)
        stressed = classify_with_rebound(
            fast_efficient, baseline, 0.2, deployment_elasticity=2.0
        )
        assert relaxed is Sustainability.WEAK
        assert stressed is Sustainability.LESS


class TestTippingPoint:
    def test_weakly_sustainable_design_has_interior_tipping_point(
        self, fast_efficient, baseline
    ):
        r_star = usage_rebound_tipping_point(fast_efficient, baseline, 0.2)
        assert r_star is not None and 0.0 < r_star < 1.0
        at_boundary = rebound_ncf(
            fast_efficient, baseline, 0.2, ReboundModel(r_star)
        )
        assert at_boundary == pytest.approx(1.0, abs=1e-6)

    def test_strong_design_never_tips(self, better_design, baseline):
        assert usage_rebound_tipping_point(better_design, baseline, 0.5) is None

    def test_less_design_tips_immediately(self, worse_design, baseline):
        assert usage_rebound_tipping_point(worse_design, baseline, 0.5) == 0.0


class TestValidation:
    def test_rejects_elasticity_above_one(self):
        with pytest.raises(ValidationError):
            ReboundModel(usage_elasticity=1.5)

    def test_rejects_negative_deployment(self):
        with pytest.raises(ValidationError):
            ReboundModel(deployment_elasticity=-0.5)
