"""Unit tests for ASCII scatter plotting."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.report.ascii_plot import PlotCanvas, render_panel, render_series
from repro.report.series import Panel, Point, Series


class TestCanvas:
    def test_mark_lands_in_output(self):
        canvas = PlotCanvas(x_min=0, x_max=10, y_min=0, y_max=10)
        canvas.mark(5, 5, "X")
        assert "X" in canvas.render()

    def test_out_of_range_points_dropped(self):
        canvas = PlotCanvas(x_min=0, x_max=1, y_min=0, y_max=1)
        canvas.mark(5, 5, "X")
        assert "X" not in canvas.render()

    def test_non_finite_points_dropped(self):
        canvas = PlotCanvas(x_min=0, x_max=1, y_min=0, y_max=1)
        canvas.mark(float("nan"), 0.5, "X")
        assert "X" not in canvas.render()

    def test_corners_map_to_extremes(self):
        canvas = PlotCanvas(width=20, height=10, x_min=0, x_max=1, y_min=0, y_max=1)
        canvas.mark(0, 1, "A")  # top-left
        canvas.mark(1, 0, "B")  # bottom-right
        lines = canvas.render().splitlines()
        assert "A" in lines[0]
        assert "B" in lines[9]

    def test_hline_drawn_under_data(self):
        canvas = PlotCanvas(x_min=0, x_max=1, y_min=0, y_max=2)
        canvas.mark(0.5, 1.0, "X")
        canvas.hline(1.0)
        row = next(line for line in canvas.render().splitlines() if "X" in line)
        assert "-" in row  # guide fills around the marker

    def test_axis_labels_in_render(self):
        canvas = PlotCanvas(x_min=0, x_max=8, y_min=1, y_max=9)
        out = canvas.render()
        assert "9" in out and "1" in out and "8" in out

    def test_too_small_canvas_rejected(self):
        with pytest.raises(ValidationError):
            PlotCanvas(width=5, height=2)

    def test_degenerate_extent_rejected(self):
        with pytest.raises(ValidationError):
            PlotCanvas(x_min=1, x_max=1)


def sample_panel() -> Panel:
    up = Series("up", tuple(Point(x, x) for x in (0.0, 0.5, 1.0)))
    down = Series("down", tuple(Point(x, 1 - x) for x in (0.0, 0.5, 1.0)))
    return Panel(name="demo", x_label="perf", y_label="ncf", series=(up, down))


class TestRenderPanel:
    def test_header_and_legend(self):
        out = render_panel(sample_panel())
        assert "demo" in out
        assert "perf" in out and "ncf" in out
        assert "o up" in out
        assert "x down" in out

    def test_distinct_markers(self):
        out = render_panel(sample_panel())
        body = out.split("legend:")[0]
        assert "o" in body and "x" in body

    def test_reference_line_optional(self):
        with_ref = render_panel(sample_panel(), reference_y=0.5)
        without = render_panel(sample_panel(), reference_y=None)
        assert with_ref.count("-") > without.count("-")

    def test_render_series_wrapper(self):
        s = Series("lone", (Point(0, 0), Point(1, 1)))
        out = render_series(s)
        assert "lone" in out
