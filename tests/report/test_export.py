"""Unit tests for figure exporters."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.core.errors import ValidationError
from repro.report.export import (
    figure_to_csv,
    figure_to_json,
    figure_to_markdown,
    write_figure,
)
from repro.report.series import FigureResult, Panel, Point, Series


@pytest.fixture
def figure() -> FigureResult:
    series = Series("curve", (Point(1.0, 2.0, "p1"), Point(3.0, 4.0, "p2")))
    panel = Panel(name="panel-a", x_label="perf", y_label="ncf", series=(series,))
    return FigureResult(
        figure_id="figX", caption="test figure", panels=(panel,), notes=("a note",)
    )


class TestCSV:
    def test_header_and_rows(self, figure):
        rows = list(csv.reader(io.StringIO(figure_to_csv(figure))))
        assert rows[0] == ["figure", "panel", "series", "label", "x", "y"]
        assert rows[1] == ["figX", "panel-a", "curve", "p1", "1.0", "2.0"]
        assert len(rows) == 3

    def test_round_trip_values(self, figure):
        rows = list(csv.DictReader(io.StringIO(figure_to_csv(figure))))
        assert float(rows[1]["y"]) == 4.0


class TestJSON:
    def test_valid_json_structure(self, figure):
        payload = json.loads(figure_to_json(figure))
        assert payload["figure_id"] == "figX"
        assert payload["notes"] == ["a note"]
        assert payload["panels"][0]["series"][0]["points"][0] == {
            "x": 1.0,
            "y": 2.0,
            "label": "p1",
        }


class TestMarkdown:
    def test_contains_caption_notes_table(self, figure):
        md = figure_to_markdown(figure)
        assert "## figX" in md
        assert "test figure" in md
        assert "> a note" in md
        assert "| curve | p1 | 1.000 | 2.000 |" in md

    def test_precision_option(self, figure):
        md = figure_to_markdown(figure, precision=1)
        assert "| 1.0 | 2.0 |" in md


class TestJSONRoundTrip:
    def test_round_trip_equality(self, figure):
        from repro.report.export import figure_from_json

        rebuilt = figure_from_json(figure_to_json(figure))
        assert rebuilt == figure

    def test_missing_label_defaults_empty(self):
        from repro.report.export import figure_from_json

        payload = {
            "figure_id": "f",
            "caption": "c",
            "panels": [
                {
                    "name": "p",
                    "x_label": "x",
                    "y_label": "y",
                    "series": [{"name": "s", "points": [{"x": 1.0, "y": 2.0}]}],
                }
            ],
        }
        rebuilt = figure_from_json(json.dumps(payload))
        assert rebuilt.panels[0].series[0].points[0].label == ""

    def test_malformed_json_raises(self):
        from repro.report.export import figure_from_json

        with pytest.raises(ValidationError, match="malformed"):
            figure_from_json("not json at all")

    def test_missing_key_raises(self):
        from repro.report.export import figure_from_json

        with pytest.raises(ValidationError):
            figure_from_json(json.dumps({"figure_id": "f"}))

    def test_empty_panels_rejected_by_model(self):
        from repro.report.export import figure_from_json

        with pytest.raises(ValidationError):
            figure_from_json(
                json.dumps({"figure_id": "f", "caption": "c", "panels": []})
            )

    def test_read_figure_file(self, figure, tmp_path):
        from repro.report.export import read_figure

        path = write_figure(figure, tmp_path / "fig.json")
        assert read_figure(path) == figure

    def test_read_figure_rejects_non_json(self, tmp_path):
        from repro.report.export import read_figure

        with pytest.raises(ValidationError, match=".json"):
            read_figure(tmp_path / "fig.csv")

    def test_every_registered_figure_round_trips(self):
        from repro.report.export import figure_from_json
        from repro.studies.registry import run_study, study_names

        for name in study_names():
            original = run_study(name)
            assert figure_from_json(figure_to_json(original)) == original


class TestWriteFigure:
    @pytest.mark.parametrize("suffix", ["csv", "json", "md"])
    def test_writes_by_suffix(self, figure, tmp_path, suffix):
        path = write_figure(figure, tmp_path / f"out.{suffix}")
        assert path.exists()
        assert path.read_text()

    def test_unknown_suffix_rejected(self, figure, tmp_path):
        with pytest.raises(ValidationError, match="suffix"):
            write_figure(figure, tmp_path / "out.xlsx")

    def test_written_json_parses(self, figure, tmp_path):
        path = write_figure(figure, tmp_path / "fig.json")
        assert json.loads(path.read_text())["figure_id"] == "figX"


class TestObservabilityWriters:
    """The metrics/trace file writers re-exported via repro.report.export."""

    def _registry(self):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("focal_evaluations_total", "evals").inc(7)
        return reg

    def test_write_metrics_prometheus_by_suffix(self, tmp_path):
        from repro.report.export import write_metrics

        for suffix in (".prom", ".txt"):
            path = write_metrics(self._registry(), tmp_path / f"m{suffix}")
            assert "# TYPE focal_evaluations_total counter" in path.read_text()

    def test_write_metrics_jsonl_default(self, tmp_path):
        from repro.report.export import write_metrics

        path = write_metrics(self._registry(), tmp_path / "m.jsonl")
        row = json.loads(path.read_text().splitlines()[0])
        assert row["name"] == "focal_evaluations_total"
        assert row["value"] == 7.0

    def test_write_trace_jsonl_without_manifest(self, tmp_path):
        from repro.obs.trace import Tracer
        from repro.report.export import write_trace

        tracer = Tracer()
        tracer.enable()
        with tracer.span("root"):
            with tracer.span("leaf"):
                pass
        path = write_trace(tmp_path / "t.jsonl", tracer=tracer)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["path"] for r in rows] == ["root", "root/leaf"]

    def test_write_trace_empty_tracer_writes_empty_file(self, tmp_path):
        from repro.obs.trace import Tracer
        from repro.report.export import write_trace

        path = write_trace(tmp_path / "t.jsonl", tracer=Tracer())
        assert path.read_text() == ""

    def test_write_trace_with_manifest_is_showable(self, tmp_path):
        from repro.obs.manifest import build_manifest
        from repro.obs.show import render_report_file
        from repro.obs.trace import Tracer
        from repro.report.export import write_trace

        tracer = Tracer()
        tracer.enable()
        with tracer.span("cli:sweep"):
            pass
        manifest = build_manifest(["sweep"], command="sweep", tracer=tracer)
        path = write_trace(tmp_path / "trace.json", manifest=manifest, tracer=tracer)
        text = render_report_file(path)
        assert "run manifest" in text and "cli:sweep" in text

    def test_write_trace_requires_source(self, tmp_path):
        from repro.report.export import write_trace

        with pytest.raises(ValidationError):
            write_trace(tmp_path / "t.json")
