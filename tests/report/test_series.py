"""Unit tests for chart data types."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.report.series import FigureResult, Panel, Point, Series


def make_series(name: str = "s") -> Series:
    return Series.from_xy(name, [1.0, 2.0], [3.0, 4.0], labels=["a", "b"])


def make_panel(name: str = "p") -> Panel:
    return Panel(name=name, x_label="x", y_label="y", series=(make_series(),))


class TestSeries:
    def test_from_xy(self):
        s = make_series()
        assert s.xs == (1.0, 2.0)
        assert s.ys == (3.0, 4.0)
        assert s.points[0].label == "a"

    def test_from_xy_without_labels(self):
        s = Series.from_xy("s", [1], [2])
        assert s.points[0].label == ""

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="x-values"):
            Series.from_xy("s", [1, 2], [3])

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="label"):
            Series.from_xy("s", [1], [2], labels=["a", "b"])

    def test_empty_series_rejected(self):
        with pytest.raises(ValidationError):
            Series(name="s", points=())

    def test_unnamed_series_rejected(self):
        with pytest.raises(ValidationError):
            Series(name="", points=(Point(1, 2),))

    def test_iteration_and_len(self):
        s = make_series()
        assert len(s) == 2
        assert [p.x for p in s] == [1.0, 2.0]


class TestPanel:
    def test_series_by_name(self):
        panel = Panel(
            name="p", x_label="x", y_label="y",
            series=(make_series("one"), make_series("two")),
        )
        assert panel.series_by_name("two").name == "two"

    def test_series_by_name_missing(self):
        panel = Panel(name="p", x_label="x", y_label="y", series=(make_series("one"),))
        with pytest.raises(ValidationError, match="one"):
            panel.series_by_name("missing")

    def test_requires_series(self):
        with pytest.raises(ValidationError):
            Panel(name="p", x_label="x", y_label="y", series=())


class TestFigureResult:
    def test_panel_lookup(self):
        fig = FigureResult(
            figure_id="f", caption="c", panels=(make_panel("a"), make_panel("b"))
        )
        assert fig.panel("b").name == "b"

    def test_panel_lookup_missing(self):
        fig = FigureResult(figure_id="f", caption="c", panels=(make_panel("a"),))
        with pytest.raises(ValidationError, match="have: a"):
            fig.panel("z")

    def test_requires_panels(self):
        with pytest.raises(ValidationError):
            FigureResult(figure_id="f", caption="c", panels=())

    def test_total_points(self):
        fig = FigureResult(
            figure_id="f", caption="c", panels=(make_panel("a"), make_panel("b"))
        )
        assert fig.total_points == 4
