"""Unit tests for SVG/HTML figure rendering."""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET

import pytest

from repro.core.errors import ValidationError
from repro.report.series import FigureResult, Panel, Point, Series
from repro.report.svg import PALETTE, figure_to_html, render_panel_svg


def make_panel(series_count: int = 2, points: int = 4) -> Panel:
    all_series = tuple(
        Series(
            name=f"s{i}",
            points=tuple(
                Point(x=float(j), y=float(i + j * 0.5), label=f"p{j}")
                for j in range(points)
            ),
        )
        for i in range(series_count)
    )
    return Panel(name="demo", x_label="perf", y_label="ncf", series=all_series)


def svg_root(svg: str) -> ET.Element:
    return ET.fromstring(svg)


SVG_NS = "{http://www.w3.org/2000/svg}"


class TestRenderPanelSVG:
    def test_valid_xml(self):
        svg_root(render_panel_svg(make_panel()))

    def test_one_polyline_per_multi_point_series(self):
        root = svg_root(render_panel_svg(make_panel(series_count=3)))
        polylines = root.findall(f".//{SVG_NS}polyline")
        assert len(polylines) == 3

    def test_one_circle_per_point(self):
        root = svg_root(render_panel_svg(make_panel(series_count=2, points=5)))
        circles = root.findall(f".//{SVG_NS}circle")
        assert len(circles) == 10

    def test_single_point_series_has_no_polyline(self):
        panel = Panel(
            name="p",
            x_label="x",
            y_label="y",
            series=(Series("dot", (Point(1.0, 2.0),)),),
        )
        root = svg_root(render_panel_svg(panel))
        assert not root.findall(f".//{SVG_NS}polyline")
        assert len(root.findall(f".//{SVG_NS}circle")) == 1

    def test_distinct_series_colors(self):
        root = svg_root(render_panel_svg(make_panel(series_count=3)))
        colors = {p.get("stroke") for p in root.findall(f".//{SVG_NS}polyline")}
        assert len(colors) == 3
        assert colors <= set(PALETTE)

    def test_axis_labels_present(self):
        svg = render_panel_svg(make_panel())
        assert "perf" in svg and "ncf" in svg

    def test_reference_line_drawn_when_in_range(self):
        svg = render_panel_svg(make_panel(), reference_y=1.0)
        assert "stroke-dasharray" in svg

    def test_reference_line_skipped_out_of_range(self):
        svg = render_panel_svg(make_panel(), reference_y=1e9)
        assert "stroke-dasharray" not in svg

    def test_names_are_escaped(self):
        panel = Panel(
            name="a < b & c",
            x_label="x",
            y_label="y",
            series=(Series("s<1>", (Point(0, 0), Point(1, 1))),),
        )
        svg = render_panel_svg(panel)
        svg_root(svg)  # escaping must keep it parseable
        assert "a &lt; b &amp; c" in svg

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValidationError):
            render_panel_svg(make_panel(), width=50, height=50)

    def test_non_finite_points_skipped(self):
        panel = Panel(
            name="p",
            x_label="x",
            y_label="y",
            series=(
                Series("s", (Point(0, 0), Point(float("nan"), 1), Point(1, 1))),
            ),
        )
        root = svg_root(render_panel_svg(panel))
        assert len(root.findall(f".//{SVG_NS}circle")) == 2


class TestFigureToHTML:
    @pytest.fixture
    def figure(self) -> FigureResult:
        return FigureResult(
            figure_id="figX",
            caption="a & b",
            panels=(make_panel(), make_panel()),
            notes=("note <1>",),
        )

    def test_standalone_document(self, figure):
        html = figure_to_html(figure)
        assert html.startswith("<!DOCTYPE html>")
        assert html.count("<svg") == 2
        assert "a &amp; b" in html
        assert "note &lt;1&gt;" in html

    def test_every_registered_figure_renders(self):
        from repro.studies.registry import run_study, study_names

        for name in study_names():
            html = figure_to_html(run_study(name))
            for svg in re.findall(r"<svg.*?</svg>", html, re.S):
                ET.fromstring(svg)

    def test_write_figure_html_suffix(self, figure, tmp_path):
        from repro.report.export import write_figure

        path = write_figure(figure, tmp_path / "fig.html")
        assert path.read_text().startswith("<!DOCTYPE html>")
