"""Unit tests for plain-text table rendering."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.report.table import format_mapping_rows, format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["name", "value"], [["a", 1.23456], ["bb", 2.0]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1].strip()) <= {"-", " "}

    def test_float_precision(self):
        out = format_table(["v"], [[1.23456]], precision=2)
        assert "1.23" in out
        assert "1.235" not in out

    def test_bool_rendering(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_title_prepended(self):
        out = format_table(["a"], [["x"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_columns_aligned(self):
        out = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = out.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_requires_headers(self):
        with pytest.raises(ValidationError):
            format_table([], [["x"]])

    def test_cell_count_mismatch(self):
        with pytest.raises(ValidationError, match="row 0"):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatMappingRows:
    def test_column_order_from_first_row(self):
        rows = [{"z": 1, "a": 2}, {"z": 3, "a": 4}]
        out = format_mapping_rows(rows)
        header = out.splitlines()[0]
        assert header.index("z") < header.index("a")

    def test_explicit_columns(self):
        rows = [{"a": 1, "b": 2}]
        out = format_mapping_rows(rows, columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_missing_keys_render_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        out = format_mapping_rows(rows, columns=["a", "b"])
        assert out  # no KeyError

    def test_requires_rows(self):
        with pytest.raises(ValidationError):
            format_mapping_rows([])
