"""Shared fixtures for the resilient-execution-layer suite.

The grids here are deliberately small (tens of points) so the chaos
tests — which spin up and kill real worker pools — stay fast; the
recovery guarantees they prove are size-independent.
"""

from __future__ import annotations

import pytest

from repro.core.design import DesignPoint
from repro.core.scenario import BALANCED
from repro.dse.batch import BatchExplorer
from repro.dse.factories import SymmetricMulticoreFactory
from repro.dse.grid import ParameterGrid
from repro.resilience import RetryPolicy


@pytest.fixture
def factory() -> SymmetricMulticoreFactory:
    return SymmetricMulticoreFactory()


@pytest.fixture
def sweep_baseline() -> DesignPoint:
    return DesignPoint.baseline("1-BCE single core")


@pytest.fixture
def grid() -> ParameterGrid:
    """64 points / 4 chunks at the default chunk size below."""
    return ParameterGrid({"cores": list(range(1, 33)), "f": [0.5, 0.9]})


@pytest.fixture
def make_explorer(factory, sweep_baseline):
    """BatchExplorer builder with the suite's defaults pre-applied."""

    def make(**overrides) -> BatchExplorer:
        overrides.setdefault("factory", factory)
        overrides.setdefault("chunk_size", 16)
        return BatchExplorer(
            baseline=sweep_baseline, weight=BALANCED, **overrides
        )

    return make


@pytest.fixture
def fast_policy() -> RetryPolicy:
    """A retry policy with near-zero backoff for fast tests."""
    return RetryPolicy(
        max_retries=2, backoff_base_s=0.001, chunk_timeout_s=15.0
    )
