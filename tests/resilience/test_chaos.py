"""Chaos suite: real faults, real pools, byte-identical recoveries.

Every test here injects genuine failures — worker processes dying via
``os._exit``, workers oversleeping a chunk timeout, factories raising
mid-chunk — and asserts the recovered sweep is *identical* to the
fault-free reference, down to the NCF bit patterns and cache contents.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience import FaultPlan, RetryPolicy

pytestmark = pytest.mark.chaos


@pytest.fixture
def reference(make_explorer, grid):
    return make_explorer().explore_arrays(grid)


def assert_identical(result, reference):
    assert result.params == reference.params
    assert tuple(result.designs) == tuple(reference.designs)
    assert np.array_equal(result.ncf_fixed_work, reference.ncf_fixed_work)
    assert np.array_equal(result.ncf_fixed_time, reference.ncf_fixed_time)
    assert np.array_equal(result.codes, reference.codes)


class TestWorkerCrash:
    def test_injected_crash_recovers_identically(
        self, make_explorer, grid, factory, tmp_path, fast_policy, reference
    ):
        plan = FaultPlan.plan(grid, seed=11, state_dir=tmp_path, crashes=1)
        explorer = make_explorer(
            factory=plan.wrap(factory), workers=2, resilience=fast_policy
        )
        result = explorer.explore_arrays(grid)
        assert_identical(result, reference)
        stats = explorer.last_supervision
        assert stats is not None
        assert stats.crashes >= 1
        assert stats.respawns >= 1

    def test_crash_without_supervision_breaks_the_sweep(
        self, make_explorer, grid, factory, tmp_path
    ):
        """The control experiment: the same fault without the
        resilience layer aborts (which is why the layer exists)."""
        from concurrent.futures.process import BrokenProcessPool

        plan = FaultPlan.plan(grid, seed=11, state_dir=tmp_path, crashes=1)
        explorer = make_explorer(factory=plan.wrap(factory), workers=2)
        with pytest.raises(BrokenProcessPool):
            explorer.explore_arrays(grid)


class TestChunkTimeout:
    def test_injected_hang_recovers_identically(
        self, make_explorer, grid, factory, tmp_path, reference
    ):
        plan = FaultPlan.plan(
            grid, seed=13, state_dir=tmp_path, hangs=1, hang_s=30.0
        )
        policy = RetryPolicy(
            max_retries=2, backoff_base_s=0.001, chunk_timeout_s=2.0
        )
        explorer = make_explorer(
            factory=plan.wrap(factory), workers=2, resilience=policy
        )
        result = explorer.explore_arrays(grid)
        assert_identical(result, reference)
        stats = explorer.last_supervision
        assert stats.timeouts >= 1
        assert stats.respawns >= 1


class TestTransientError:
    def test_injected_errors_recover_identically(
        self, make_explorer, grid, factory, tmp_path, fast_policy, reference
    ):
        plan = FaultPlan.plan(grid, seed=17, state_dir=tmp_path, errors=2)
        explorer = make_explorer(
            factory=plan.wrap(factory), workers=2, resilience=fast_policy
        )
        result = explorer.explore_arrays(grid)
        assert_identical(result, reference)
        assert explorer.last_supervision.transient_errors >= 1


class TestKillThenResume:
    def test_crash_mid_sweep_then_resume_identical(
        self, make_explorer, grid, factory, tmp_path, reference
    ):
        """The full story: a sweep dies (unsupervised worker crash)
        partway with a checkpoint, a fresh run resumes and finishes —
        byte-identical to never having crashed."""
        from concurrent.futures.process import BrokenProcessPool

        ckpt = tmp_path / "sweep.ckpt"
        plan = FaultPlan.plan(grid, seed=19, state_dir=tmp_path, crashes=1)
        doomed = make_explorer(factory=plan.wrap(factory), workers=2)
        with pytest.raises(BrokenProcessPool):
            doomed.explore_arrays(grid, checkpoint=ckpt)
        # The fault fired once; the resumed run evaluates clean. It may
        # restart cold (crash before the first save) or resume partway —
        # the output must be identical either way.
        resumed = make_explorer(factory=plan.wrap(factory), workers=2)
        result = resumed.explore_arrays(grid, checkpoint=ckpt, resume=True)
        assert_identical(result, reference)


class TestFaultFreeSupervision:
    def test_supervised_clean_run_identical_and_quiet(
        self, make_explorer, grid, factory, fast_policy, reference
    ):
        explorer = make_explorer(
            factory=factory, workers=2, resilience=fast_policy
        )
        result = explorer.explore_arrays(grid)
        assert_identical(result, reference)
        stats = explorer.last_supervision
        assert stats.faults == 0
        assert stats.summary() == ""
