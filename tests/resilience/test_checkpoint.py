"""CheckpointStore durability, verification and outcome codecs."""

from __future__ import annotations

import json

import pytest

from repro.core.design import DesignPoint
from repro.core.errors import CheckpointError, DomainError
from repro.resilience import (
    CheckpointStore,
    corrupt_checkpoint,
    decode_outcomes,
    describe_factory,
    encode_outcomes,
    sweep_fingerprint,
    truncate_checkpoint,
)

FP = {"sampler": "test", "seed": 1}


@pytest.fixture
def store(tmp_path) -> CheckpointStore:
    return CheckpointStore(tmp_path / "run.ckpt")


class TestSaveLoad:
    def test_roundtrip(self, store):
        store.save(kind="sweep", fingerprint=FP, state={"chunks": [[1, 2]]})
        assert store.load(kind="sweep", fingerprint=FP) == {"chunks": [[1, 2]]}

    def test_save_is_atomic_replacement(self, store):
        store.save(kind="sweep", fingerprint=FP, state={"n": 1})
        store.save(kind="sweep", fingerprint=FP, state={"n": 2})
        assert store.load(kind="sweep", fingerprint=FP) == {"n": 2}
        leftovers = list(store.path.parent.glob("*.tmp.*"))
        assert leftovers == []

    def test_missing_file_raises_on_load(self, store):
        with pytest.raises(CheckpointError, match="does not exist"):
            store.load(kind="sweep", fingerprint=FP)

    def test_missing_file_is_cold_start_on_resume(self, store):
        assert store.load_or_restart(kind="sweep", fingerprint=FP) is None

    def test_kind_mismatch_raises(self, store):
        store.save(kind="sweep", fingerprint=FP, state={})
        with pytest.raises(CheckpointError, match="expected 'montecarlo'"):
            store.load(kind="montecarlo", fingerprint=FP)

    def test_fingerprint_mismatch_raises(self, store):
        store.save(kind="sweep", fingerprint=FP, state={})
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            store.load(kind="sweep", fingerprint={"sampler": "test", "seed": 2})

    def test_fingerprint_mismatch_still_raises_on_resume(self, store):
        """A mismatch is a configuration error, never a silent restart."""
        store.save(kind="sweep", fingerprint=FP, state={})
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            store.load_or_restart(
                kind="sweep", fingerprint={"sampler": "test", "seed": 2}
            )

    def test_coerce(self, tmp_path):
        assert CheckpointStore.coerce(None) is None
        store = CheckpointStore(tmp_path / "a")
        assert CheckpointStore.coerce(store) is store
        assert CheckpointStore.coerce(tmp_path / "b").path == tmp_path / "b"

    def test_remove(self, store):
        store.save(kind="sweep", fingerprint=FP, state={})
        store.remove()
        assert not store.exists()
        store.remove()  # idempotent


class TestDamageDetection:
    def test_truncated_file_restarts_cold(self, store):
        store.save(kind="sweep", fingerprint=FP, state={"chunks": [[0] * 64]})
        truncate_checkpoint(store.path)
        assert store.load_or_restart(kind="sweep", fingerprint=FP) is None

    def test_corrupted_byte_restarts_cold(self, store):
        store.save(kind="sweep", fingerprint=FP, state={"chunks": [[0] * 64]})
        corrupt_checkpoint(store.path)
        assert store.load_or_restart(kind="sweep", fingerprint=FP) is None

    def test_corrupted_byte_fails_checksum_on_strict_load(self, store):
        store.save(kind="sweep", fingerprint=FP, state={"chunks": [[0] * 64]})
        corrupt_checkpoint(store.path)
        with pytest.raises(CheckpointError):
            store.load(kind="sweep", fingerprint=FP)

    def test_wrong_format_tag_restarts_cold(self, store):
        store.save(kind="sweep", fingerprint=FP, state={})
        document = json.loads(store.path.read_text())
        document["format"] = "focal-checkpoint/999"
        store.path.write_text(json.dumps(document))
        assert store.load_or_restart(kind="sweep", fingerprint=FP) is None

    def test_non_json_restarts_cold(self, store):
        store.path.write_text("definitely not json{")
        assert store.load_or_restart(kind="sweep", fingerprint=FP) is None


class TestOutcomeCodec:
    def test_designs_roundtrip_bit_exact(self):
        outcomes = [
            DesignPoint("a", area=1.0 / 3.0, perf=2.0 / 7.0, power=0.1),
            DomainError("invalid corner"),
            DesignPoint("b", area=5.5, perf=1e-300, power=3.14159),
        ]
        decoded = decode_outcomes(encode_outcomes(outcomes))
        assert decoded[0] == outcomes[0]
        assert isinstance(decoded[1], DomainError)
        assert str(decoded[1]) == "invalid corner"
        assert decoded[2] == outcomes[2]

    def test_undecodable_row_raises(self):
        with pytest.raises(CheckpointError, match="undecodable"):
            decode_outcomes([["x", "mystery"]])
        with pytest.raises(CheckpointError, match="undecodable"):
            decode_outcomes([["d", "name", "not-hex", "0x1p0", "0x1p0"]])


class TestFingerprints:
    def test_function_factories_named_without_address(self):
        def local_factory(params):
            return None

        described = describe_factory(local_factory)
        assert "0x" not in described
        assert "local_factory" in described

    def test_instance_factories_use_value_repr(self):
        from repro.dse.factories import SymmetricMulticoreFactory

        assert describe_factory(SymmetricMulticoreFactory()) == repr(
            SymmetricMulticoreFactory()
        )

    def test_sweep_fingerprint_changes_with_configuration(self):
        baseline = DesignPoint.baseline("b")

        def fingerprint(**overrides):
            kwargs = dict(
                axes={"cores": [1, 2], "f": [0.5]},
                chunk_size=16,
                baseline=baseline,
                alpha=0.5,
                factory=SweepFactory(),
            )
            kwargs.update(overrides)
            return sweep_fingerprint(**kwargs)

        base = fingerprint()
        assert fingerprint() == base
        assert fingerprint(chunk_size=8) != base
        assert fingerprint(alpha=0.25) != base
        assert fingerprint(axes={"cores": [1, 2, 3], "f": [0.5]}) != base


class SweepFactory:
    def __repr__(self) -> str:
        return "SweepFactory()"
