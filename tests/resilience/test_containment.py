"""Unit tests for the failure-containment primitives.

The quarantine ledger, heartbeat watchdog, failure report and
disk-fault-tolerant writes are each exercised in isolation here; the
chaos suite (``test_quarantine.py``) proves they compose against real
worker pools.
"""

from __future__ import annotations

import errno
import json
import time

import pytest

from repro.core.errors import DomainError, QuarantinedPoint
from repro.core.design import DesignPoint
from repro.obs import metrics as _metrics
from repro.resilience import (
    INCOMPLETE,
    QUARANTINE_FORMAT,
    BisectOutcome,
    FailureReport,
    HeartbeatMonitor,
    QuarantineLedger,
    atomic_write_text,
    decode_outcomes,
    encode_outcomes,
    set_disk_fault_hook,
)
from repro.resilience.containment import (
    _Incomplete,
    arm_heartbeat,
    beat,
    disarm_heartbeat,
    point_key,
)


@pytest.fixture(autouse=True)
def _clean_hooks():
    """Never leak a disk-fault hook or armed heartbeat across tests."""
    yield
    set_disk_fault_hook(None)
    disarm_heartbeat()


# ----------------------------------------------------------------------
# point_key
# ----------------------------------------------------------------------
class TestPointKey:
    def test_axis_order_free(self):
        assert point_key({"a": 1, "b": 0.5}) == point_key({"b": 0.5, "a": 1})

    def test_type_tagged(self):
        # 1 (int), 1.0 (float) and True (bool) are == in Python but are
        # distinct grid values; the key must keep them apart.
        keys = {
            point_key({"x": 1}),
            point_key({"x": 1.0}),
            point_key({"x": True}),
            point_key({"x": "1"}),
            point_key({"x": None}),
        }
        assert len(keys) == 5

    def test_floats_are_bit_exact(self):
        assert point_key({"f": 0.1 + 0.2}) != point_key({"f": 0.3})


# ----------------------------------------------------------------------
# QuarantineLedger / QuarantineSession
# ----------------------------------------------------------------------
class TestQuarantineLedger:
    def test_roundtrip_across_instances(self, tmp_path):
        path = tmp_path / "poison.json"
        ledger = QuarantineLedger(path)
        ledger.record("fac", {"cores": 3, "f": 0.5}, kind="poison", reason="boom")
        ledger.record("fac", {"cores": 7, "f": 0.9}, kind="poison", reason="boom")
        ledger.record("other", {"cores": 3, "f": 0.5}, kind="crash", reason="x")

        fresh = QuarantineLedger(path)
        assert len(fresh) == 3
        entries = fresh.entries("fac")
        assert len(entries) == 2
        entry = entries[point_key({"cores": 3, "f": 0.5})]
        assert entry["kind"] == "poison"
        assert entry["reason"] == "boom"
        # sections are keyed by factory identity: a different factory
        # never sees another factory's poison points.
        assert len(fresh.entries("other")) == 1
        assert fresh.entries("missing") == {}

    def test_record_persists_immediately(self, tmp_path):
        """A sweep killed right after isolating a point still skips it."""
        path = tmp_path / "poison.json"
        QuarantineLedger(path).record(
            "fac", {"cores": 1}, kind="poison", reason="r"
        )
        assert path.exists()
        assert len(QuarantineLedger(path)) == 1

    def test_document_is_checksummed(self, tmp_path):
        path = tmp_path / "poison.json"
        ledger = QuarantineLedger(path)
        ledger.record("fac", {"cores": 1}, kind="poison", reason="r")
        document = json.loads(path.read_text())
        assert document["format"] == QUARANTINE_FORMAT
        assert "sha256" in document and "payload" in document

    @pytest.mark.parametrize(
        "damage",
        [
            lambda p: p.write_text("{not json"),
            lambda p: p.write_text(json.dumps({"format": "other/9"})),
            lambda p: p.write_text(
                json.dumps(
                    {
                        "format": QUARANTINE_FORMAT,
                        "sha256": "0" * 64,
                        "payload": {"sections": {"fac": {}}},
                    }
                )
            ),
        ],
        ids=["truncated", "wrong-format", "bad-checksum"],
    )
    def test_damaged_ledger_is_an_empty_ledger(self, tmp_path, damage):
        """Losing the ledger costs re-discovery, never correctness."""
        path = tmp_path / "poison.json"
        damage(path)
        assert len(QuarantineLedger(path)) == 0

    def test_coerce(self, tmp_path):
        path = tmp_path / "poison.json"
        ledger = QuarantineLedger(path)
        assert QuarantineLedger.coerce(None) is None
        assert QuarantineLedger.coerce(ledger) is ledger
        assert QuarantineLedger.coerce(path).path == path

    def test_session_tracks_new_and_known(self, tmp_path):
        ledger = QuarantineLedger(tmp_path / "poison.json")
        ledger.record("fac", {"cores": 9}, kind="poison", reason="old")
        session = ledger.session("fac")
        assert session.known_count == 1
        assert session.count == 0
        assert session.known({"cores": 9})["reason"] == "old"
        assert session.known({"cores": 1}) is None

        marker = session.quarantine({"cores": 1}, kind="poison", reason="new")
        assert isinstance(marker, QuarantinedPoint)
        assert "poison" in str(marker) and "new" in str(marker)
        assert session.count == 1
        assert session.known_count == 2
        assert session.new_points[0]["params"] == {"cores": 1}
        # ...and the record hit the disk without any explicit flush.
        assert len(QuarantineLedger(ledger.path).entries("fac")) == 2

    def test_marker_for_known_point(self, tmp_path):
        ledger = QuarantineLedger(tmp_path / "poison.json")
        session = ledger.session("fac")
        session.quarantine({"cores": 5}, kind="crash", reason="why")
        marker = session.marker({"cores": 5})
        assert isinstance(marker, QuarantinedPoint)
        assert session.marker({"cores": 6}) is None

    def test_record_counts_metric(self, tmp_path):
        _metrics.reset()
        _metrics.enable()
        try:
            QuarantineLedger(tmp_path / "p.json").record(
                "fac", {"cores": 1}, kind="poison", reason="r"
            )
            counter = _metrics.get_registry().counter("focal_quarantine_total")
            assert counter.value == 1
        finally:
            _metrics.reset()


# ----------------------------------------------------------------------
# INCOMPLETE / BisectOutcome / FailureReport
# ----------------------------------------------------------------------
class TestSalvageTypes:
    def test_incomplete_is_a_singleton(self):
        assert _Incomplete() is INCOMPLETE
        assert repr(INCOMPLETE) == "INCOMPLETE"

    def test_bisect_outcome_keeps_dispatch_order(self):
        replies = ("a", QuarantinedPoint("q"), "c")
        assert BisectOutcome(replies=replies).replies == replies

    def test_failure_report_roundtrip(self):
        report = FailureReport(
            reason="pool gone",
            error="BrokenProcessPool",
            completed_chunks=2,
            total_chunks=4,
            completed_points=32,
            pending_points=32,
            checkpoint="sweep.ckpt",
        )
        as_dict = report.as_dict()
        assert as_dict["completed_chunks"] == 2
        assert as_dict["checkpoint"] == "sweep.ckpt"
        summary = report.summary()
        assert summary.startswith("salvaged: 2/4 chunks (32 points) kept")
        assert "32 points pending" in summary
        assert summary.endswith("resume from sweep.ckpt")

    def test_failure_report_without_checkpoint(self):
        report = FailureReport(
            reason="r", error="e", completed_chunks=0, total_chunks=1,
            completed_points=0, pending_points=16,
        )
        assert "resume" not in report.summary()
        assert report.as_dict()["checkpoint"] is None


# ----------------------------------------------------------------------
# Quarantined outcomes survive checkpoint encoding
# ----------------------------------------------------------------------
class TestQuarantineEncoding:
    def test_q_tag_roundtrips(self):
        outcomes = [
            DesignPoint(name="d", area=4.0, perf=2.0, power=3.0),
            QuarantinedPoint("quarantined (poison): isolated"),
            DomainError("invalid corner"),
        ]
        decoded = decode_outcomes(encode_outcomes(outcomes))
        assert decoded[0] == outcomes[0]
        assert isinstance(decoded[1], QuarantinedPoint)
        assert str(decoded[1]) == str(outcomes[1])
        # QuarantinedPoint subclasses DomainError; the tag must keep the
        # two apart so resumed sweeps keep reporting quarantine.
        assert isinstance(decoded[2], DomainError)
        assert not isinstance(decoded[2], QuarantinedPoint)


# ----------------------------------------------------------------------
# Heartbeat watchdog
# ----------------------------------------------------------------------
class TestHeartbeatMonitor:
    def test_no_reports_is_never_stale(self):
        monitor = HeartbeatMonitor()
        monitor.arm()
        try:
            # An empty directory means no worker reported yet — the pool
            # may still be warming up and must not be reaped.
            assert not monitor.stale(0.0)
        finally:
            monitor.cleanup()

    def test_live_beat_is_not_stale(self):
        monitor = HeartbeatMonitor()
        arm_heartbeat(monitor.arm())
        try:
            assert not monitor.stale(5.0)
        finally:
            monitor.cleanup()

    def test_all_stale_heartbeats_trip_the_watchdog(self):
        monitor = HeartbeatMonitor()
        arm_heartbeat(monitor.arm())
        try:
            time.sleep(0.05)
            assert monitor.stale(0.01)
        finally:
            monitor.cleanup()

    def test_one_live_worker_keeps_the_pool(self):
        import os
        import pathlib

        monitor = HeartbeatMonitor()
        hb_dir = monitor.arm()
        try:
            arm_heartbeat(hb_dir)  # this process's beat, fresh
            old = pathlib.Path(hb_dir) / "hb-999999"
            old.touch()
            past = time.time() - 60.0
            os.utime(old, (past, past))
            # One worker went silent a minute ago, but ours just beat:
            # the pool is draining jobs and must not be reaped.
            assert not monitor.stale(5.0)
        finally:
            monitor.cleanup()

    def test_beat_is_rate_limited(self):
        monitor = HeartbeatMonitor()
        hb_dir = monitor.arm()
        try:
            arm_heartbeat(hb_dir)
            path = next(iter(monitor._files()))
            first = path.stat().st_mtime_ns
            beat()  # within HEARTBEAT_MIN_INTERVAL_S: no touch
            assert path.stat().st_mtime_ns == first
        finally:
            monitor.cleanup()

    def test_beat_without_arming_is_a_noop(self):
        disarm_heartbeat()
        beat()  # must not raise

    def test_clear_forgets_heartbeats(self):
        monitor = HeartbeatMonitor()
        arm_heartbeat(monitor.arm())
        try:
            time.sleep(0.05)
            assert monitor.stale(0.01)
            monitor.clear()
            assert not monitor.stale(0.01)
        finally:
            monitor.cleanup()

    def test_cleanup_removes_the_directory(self):
        import pathlib

        monitor = HeartbeatMonitor()
        hb_dir = monitor.arm()
        assert pathlib.Path(hb_dir).is_dir()
        monitor.cleanup()
        assert not pathlib.Path(hb_dir).exists()
        assert monitor.directory is None

    def test_arm_is_idempotent(self):
        monitor = HeartbeatMonitor()
        try:
            assert monitor.arm() == monitor.arm()
        finally:
            monitor.cleanup()


# ----------------------------------------------------------------------
# Disk-fault tolerance in durable writes
# ----------------------------------------------------------------------
class TestDiskFaults:
    def test_transient_fault_is_retried(self, tmp_path):
        path = tmp_path / "out.json"
        fires = {"left": 2}

        def hook(_path):
            if fires["left"]:
                fires["left"] -= 1
                raise OSError(errno.ENOSPC, "no space")

        set_disk_fault_hook(hook)
        atomic_write_text(path, "payload", sleep=lambda _s: None)
        assert path.read_text() == "payload"
        assert fires["left"] == 0

    def test_retries_count_the_metric(self, tmp_path):
        _metrics.reset()
        _metrics.enable()
        fires = {"left": 2}

        def hook(_path):
            if fires["left"]:
                fires["left"] -= 1
                raise OSError(errno.EIO, "io error")

        set_disk_fault_hook(hook)
        try:
            atomic_write_text(tmp_path / "o", "x", sleep=lambda _s: None)
            counter = _metrics.get_registry().counter("focal_disk_retry_total")
            assert counter.value == 2
        finally:
            _metrics.reset()

    def test_persistent_transient_fault_propagates(self, tmp_path):
        def hook(_path):
            raise OSError(errno.ENOSPC, "forever full")

        set_disk_fault_hook(hook)
        with pytest.raises(OSError):
            atomic_write_text(tmp_path / "o", "x", sleep=lambda _s: None)

    def test_non_transient_fault_is_not_retried(self, tmp_path):
        calls = {"n": 0}

        def hook(_path):
            calls["n"] += 1
            raise OSError(errno.EACCES, "configuration, not weather")

        set_disk_fault_hook(hook)
        with pytest.raises(OSError):
            atomic_write_text(tmp_path / "o", "x", sleep=lambda _s: None)
        assert calls["n"] == 1

    def test_no_temp_file_left_behind(self, tmp_path):
        def hook(_path):
            raise OSError(errno.ENOSPC, "full")

        set_disk_fault_hook(hook)
        with pytest.raises(OSError):
            atomic_write_text(tmp_path / "o", "x", sleep=lambda _s: None)
        assert list(tmp_path.iterdir()) == []
