"""The deterministic fault-injection harness itself."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.dse.grid import ParameterGrid
from repro.resilience import FaultPlan, FaultSpec, InjectedFault


@pytest.fixture
def grid() -> ParameterGrid:
    return ParameterGrid({"cores": [1, 2, 4, 8], "f": [0.5, 0.9]})


class Identity:
    def __call__(self, params):
        return dict(params)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValidationError, match="fault kind"):
            FaultSpec(kind="meteor", key=(("cores", 1),))

    def test_marker_names_are_distinct_and_safe(self):
        a = FaultSpec("error", (("cores", 1),)).marker_name()
        b = FaultSpec("error", (("cores", 2),)).marker_name()
        c = FaultSpec("crash", (("cores", 1),)).marker_name()
        assert len({a, b, c}) == 3
        assert all("/" not in name for name in (a, b, c))


class TestFaultPlan:
    def test_same_seed_same_plan(self, grid, tmp_path):
        one = FaultPlan.plan(grid, seed=5, state_dir=tmp_path, errors=3)
        two = FaultPlan.plan(grid, seed=5, state_dir=tmp_path, errors=3)
        assert one.specs == two.specs

    def test_different_seed_different_plan(self, grid, tmp_path):
        one = FaultPlan.plan(grid, seed=5, state_dir=tmp_path, errors=3)
        two = FaultPlan.plan(grid, seed=6, state_dir=tmp_path, errors=3)
        assert one.specs != two.specs

    def test_targets_are_distinct_grid_points(self, grid, tmp_path):
        plan = FaultPlan.plan(grid, seed=0, state_dir=tmp_path, errors=4)
        keys = [spec.key for spec in plan.specs]
        assert len(set(keys)) == 4
        grid_keys = {tuple(sorted(point.items())) for point in grid}
        assert set(keys) <= grid_keys

    def test_rejects_more_faults_than_points(self, grid, tmp_path):
        with pytest.raises(ValidationError, match="cannot inject"):
            FaultPlan.plan(grid, seed=0, state_dir=tmp_path, errors=99)

    def test_kind_mix_respected(self, grid, tmp_path):
        plan = FaultPlan.plan(
            grid, seed=1, state_dir=tmp_path, crashes=1, hangs=2, errors=3
        )
        kinds = [spec.kind for spec in plan.specs]
        assert kinds.count("crash") == 1
        assert kinds.count("hang") == 2
        assert kinds.count("error") == 3


class TestSingleFire:
    def test_error_fires_once_then_point_evaluates(self, grid, tmp_path):
        plan = FaultPlan.plan(grid, seed=2, state_dir=tmp_path, errors=1)
        wrapped = plan.wrap(Identity())
        target = dict(plan.specs[0].key)
        with pytest.raises(InjectedFault):
            wrapped(target)
        assert wrapped(target) == target  # second call: normal evaluation

    def test_untargeted_points_never_fault(self, grid, tmp_path):
        plan = FaultPlan.plan(grid, seed=2, state_dir=tmp_path, errors=1)
        wrapped = plan.wrap(Identity())
        target = plan.specs[0].key
        for point in grid:
            if tuple(sorted(point.items())) != target:
                assert wrapped(point) == point

    def test_reset_rearms_the_plan(self, grid, tmp_path):
        plan = FaultPlan.plan(grid, seed=2, state_dir=tmp_path, errors=1)
        wrapped = plan.wrap(Identity())
        target = dict(plan.specs[0].key)
        with pytest.raises(InjectedFault):
            wrapped(target)
        plan.reset()
        with pytest.raises(InjectedFault):
            wrapped(target)

    def test_wrapper_hides_vector_path(self, grid, tmp_path):
        """Chaos runs must exercise the scalar path the faults target."""
        plan = FaultPlan.plan(grid, seed=2, state_dir=tmp_path, errors=1)
        assert not hasattr(plan.wrap(Identity()), "batch_arrays")
