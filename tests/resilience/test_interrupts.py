"""Interrupt hygiene: aborted sweeps leave no orphans, no bad files.

The two abort modes that matter operationally are ``Ctrl-C``
(``KeyboardInterrupt`` in the parent) and a worker dying hard
(``BrokenProcessPool``). Both must reap every worker process and leave
any checkpoint either absent or fully loadable — never torn.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.resilience import CheckpointStore


def _settled_children(timeout_s: float = 10.0) -> list:
    """Child processes still alive after giving reaping a moment."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        alive = [p for p in multiprocessing.active_children() if p.is_alive()]
        if not alive:
            return []
        time.sleep(0.05)
    return alive


class InterruptingGrid:
    """Iterates like the wrapped grid, raising KeyboardInterrupt after
    *after* points — a deterministic stand-in for Ctrl-C mid-sweep."""

    def __init__(self, grid, after: int):
        self.grid = grid
        self.after = after

    def __len__(self) -> int:
        return len(self.grid)

    @property
    def axes(self):
        return self.grid.axes

    def __iter__(self):
        for index, point in enumerate(self.grid):
            if index == self.after:
                raise KeyboardInterrupt()
            yield point


class TestKeyboardInterrupt:
    @pytest.mark.parametrize("supervised", [False, True])
    def test_no_orphan_workers(
        self, make_explorer, grid, tmp_path, fast_policy, supervised
    ):
        explorer = make_explorer(
            workers=2, resilience=fast_policy if supervised else None
        )
        with pytest.raises(KeyboardInterrupt):
            explorer.explore_arrays(
                InterruptingGrid(grid, after=40),
                checkpoint=tmp_path / "sweep.ckpt",
            )
        assert _settled_children() == []

    def test_checkpoint_loadable_after_interrupt(
        self, make_explorer, grid, tmp_path
    ):
        ckpt = tmp_path / "sweep.ckpt"
        with pytest.raises(KeyboardInterrupt):
            make_explorer().explore_arrays(
                InterruptingGrid(grid, after=40), checkpoint=ckpt
            )
        # Two full chunks completed before the interrupt: the file holds
        # them, verifies, and carries no torn temp siblings.
        store = CheckpointStore(ckpt)
        payload = store._read_payload()
        assert len(payload["state"]["chunks"]) == 2
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_interrupted_then_resumed_is_identical(
        self, make_explorer, grid, tmp_path
    ):
        import numpy as np

        reference = make_explorer().explore_arrays(grid)
        ckpt = tmp_path / "sweep.ckpt"
        with pytest.raises(KeyboardInterrupt):
            make_explorer().explore_arrays(
                InterruptingGrid(grid, after=40), checkpoint=ckpt
            )
        result = make_explorer().explore_arrays(
            grid, checkpoint=ckpt, resume=True
        )
        assert np.array_equal(result.codes, reference.codes)
        assert np.array_equal(result.ncf_fixed_work, reference.ncf_fixed_work)


class TestBrokenPool:
    def test_no_orphans_after_unsupervised_crash(
        self, make_explorer, grid, factory, tmp_path
    ):
        from concurrent.futures.process import BrokenProcessPool

        from repro.resilience import FaultPlan

        plan = FaultPlan.plan(grid, seed=23, state_dir=tmp_path, crashes=1)
        explorer = make_explorer(factory=plan.wrap(factory), workers=2)
        with pytest.raises(BrokenProcessPool):
            explorer.explore_arrays(grid)
        assert _settled_children() == []

    def test_no_orphans_after_supervised_recovery(
        self, make_explorer, grid, factory, tmp_path, fast_policy
    ):
        from repro.resilience import FaultPlan

        plan = FaultPlan.plan(grid, seed=23, state_dir=tmp_path, crashes=1)
        explorer = make_explorer(
            factory=plan.wrap(factory), workers=2, resilience=fast_policy
        )
        explorer.explore_arrays(grid)
        assert _settled_children() == []

    def test_no_orphans_after_hung_worker_teardown(
        self, make_explorer, grid, factory, tmp_path
    ):
        """A hung worker cannot be cancelled, only terminated — the
        supervisor's teardown must still reap it."""
        from repro.resilience import FaultPlan, RetryPolicy

        plan = FaultPlan.plan(
            grid, seed=29, state_dir=tmp_path, hangs=1, hang_s=30.0
        )
        policy = RetryPolicy(
            max_retries=1, backoff_base_s=0.001, chunk_timeout_s=1.0
        )
        explorer = make_explorer(
            factory=plan.wrap(factory), workers=2, resilience=policy
        )
        explorer.explore_arrays(grid)
        assert _settled_children() == []
