"""Checkpointed Monte-Carlo: the sample stream survives a kill."""

from __future__ import annotations

import pytest

from repro.core.design import DesignPoint
from repro.core.errors import CheckpointError, ConfigurationError, ValidationError
from repro.core.scenario import BALANCED
from repro.dse.montecarlo import sample_measurement_noise, sample_verdicts
from repro.resilience import CheckpointStore, truncate_checkpoint

SAMPLES = 8192


class Killed(BaseException):
    """Out-of-band kill signal (BaseException so nothing swallows it)."""


@pytest.fixture
def design() -> DesignPoint:
    return DesignPoint("candidate", area=1.2, perf=1.4, power=1.1)


@pytest.fixture
def mc_baseline() -> DesignPoint:
    return DesignPoint.baseline("baseline")


@pytest.fixture
def kill_after(monkeypatch):
    """Kill the sampler after its Nth checkpoint save."""

    def arm(count: int):
        saves = {"n": 0}
        real_save = CheckpointStore.save

        def bombed(self, **kwargs):
            real_save(self, **kwargs)
            saves["n"] += 1
            if saves["n"] == count:
                raise Killed()

        monkeypatch.setattr(CheckpointStore, "save", bombed)

    return arm


class TestSampleVerdicts:
    def test_chunked_equals_single_shot(self, design, mc_baseline, tmp_path):
        reference = sample_verdicts(design, mc_baseline, BALANCED, samples=SAMPLES, seed=9)
        chunked = sample_verdicts(
            design, mc_baseline, BALANCED, samples=SAMPLES, seed=9,
            checkpoint=tmp_path / "v.ckpt", checkpoint_every=1000,
        )
        assert chunked == reference

    def test_kill_and_resume_bit_exact(self, design, mc_baseline, tmp_path, kill_after):
        reference = sample_verdicts(design, mc_baseline, BALANCED, samples=SAMPLES, seed=9)
        ckpt = tmp_path / "v.ckpt"
        kill_after(3)
        with pytest.raises(Killed):
            sample_verdicts(
                design, mc_baseline, BALANCED, samples=SAMPLES, seed=9,
                checkpoint=ckpt, checkpoint_every=1000,
            )
        resumed = sample_verdicts(
            design, mc_baseline, BALANCED, samples=SAMPLES, seed=9,
            checkpoint=ckpt, resume=True, checkpoint_every=1000,
        )
        assert resumed == reference

    def test_resume_chunking_may_differ(self, design, mc_baseline, tmp_path, kill_after):
        """The stream is split-invariant: resuming with a different
        chunk size still reproduces the single-shot probabilities."""
        reference = sample_verdicts(design, mc_baseline, BALANCED, samples=SAMPLES, seed=9)
        ckpt = tmp_path / "v.ckpt"
        kill_after(2)
        with pytest.raises(Killed):
            sample_verdicts(
                design, mc_baseline, BALANCED, samples=SAMPLES, seed=9,
                checkpoint=ckpt, checkpoint_every=1000,
            )
        resumed = sample_verdicts(
            design, mc_baseline, BALANCED, samples=SAMPLES, seed=9,
            checkpoint=ckpt, resume=True, checkpoint_every=577,
        )
        assert resumed == reference

    def test_resume_across_worker_counts(self, design, mc_baseline, tmp_path, kill_after):
        """workers is an execution knob, not part of the stream
        identity: a checkpoint written serially resumes on a pool (and
        lands on the single-shot probabilities, bit for bit)."""
        reference = sample_verdicts(design, mc_baseline, BALANCED, samples=SAMPLES, seed=9)
        ckpt = tmp_path / "v.ckpt"
        kill_after(2)
        with pytest.raises(Killed):
            sample_verdicts(
                design, mc_baseline, BALANCED, samples=SAMPLES, seed=9,
                checkpoint=ckpt, checkpoint_every=1000,
            )
        resumed = sample_verdicts(
            design, mc_baseline, BALANCED, samples=SAMPLES, seed=9,
            checkpoint=ckpt, resume=True, checkpoint_every=1000, workers=2,
        )
        assert resumed == reference

    def test_seed_mismatch_refused(self, design, mc_baseline, tmp_path):
        ckpt = tmp_path / "v.ckpt"
        sample_verdicts(design, mc_baseline, BALANCED, samples=SAMPLES, seed=9,
                        checkpoint=ckpt)
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            sample_verdicts(design, mc_baseline, BALANCED, samples=SAMPLES, seed=10,
                            checkpoint=ckpt, resume=True)

    def test_resume_requires_checkpoint(self, design, mc_baseline):
        with pytest.raises(ConfigurationError, match="requires a checkpoint"):
            sample_verdicts(design, mc_baseline, BALANCED, resume=True)

    def test_rejects_bad_chunking(self, design, mc_baseline, tmp_path):
        with pytest.raises(ValidationError, match="checkpoint_every"):
            sample_verdicts(
                design, mc_baseline, BALANCED,
                checkpoint=tmp_path / "v.ckpt", checkpoint_every=0,
            )


class TestSampleMeasurementNoise:
    def test_kill_and_resume_bit_exact(self, design, mc_baseline, tmp_path, kill_after):
        reference = sample_measurement_noise(
            design, mc_baseline, 0.5, samples=SAMPLES, seed=4
        )
        ckpt = tmp_path / "n.ckpt"
        kill_after(3)
        with pytest.raises(Killed):
            sample_measurement_noise(
                design, mc_baseline, 0.5, samples=SAMPLES, seed=4,
                checkpoint=ckpt, checkpoint_every=1000,
            )
        resumed = sample_measurement_noise(
            design, mc_baseline, 0.5, samples=SAMPLES, seed=4,
            checkpoint=ckpt, resume=True, checkpoint_every=1000,
        )
        assert resumed == reference

    def test_damaged_checkpoint_restarts_cold(self, design, mc_baseline, tmp_path):
        reference = sample_measurement_noise(
            design, mc_baseline, 0.5, samples=SAMPLES, seed=4
        )
        ckpt = tmp_path / "n.ckpt"
        sample_measurement_noise(
            design, mc_baseline, 0.5, samples=SAMPLES, seed=4, checkpoint=ckpt
        )
        truncate_checkpoint(ckpt)
        resumed = sample_measurement_noise(
            design, mc_baseline, 0.5, samples=SAMPLES, seed=4,
            checkpoint=ckpt, resume=True,
        )
        assert resumed == reference

    def test_sigma_mismatch_refused(self, design, mc_baseline, tmp_path):
        ckpt = tmp_path / "n.ckpt"
        sample_measurement_noise(
            design, mc_baseline, 0.5, samples=SAMPLES, seed=4, checkpoint=ckpt
        )
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            sample_measurement_noise(
                design, mc_baseline, 0.5, relative_sigma=0.2,
                samples=SAMPLES, seed=4, checkpoint=ckpt, resume=True,
            )
