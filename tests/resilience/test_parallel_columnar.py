"""Resilience of the parallel-columnar engine path.

The parallel-columnar mode moves kernel execution into worker processes
and results into shared memory — every recovery guarantee the scalar
pool enjoys must hold there too: injected crashes/hangs/errors recover
byte-identically, kill-then-resume is bit-exact, and aborted sweeps
leave neither orphan workers nor shared-memory segments behind.
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np
import pytest

from repro.dse import parallel
from repro.dse.factories import SymmetricMulticoreFactory
from repro.resilience import (
    CheckpointStore,
    FaultPlan,
    RetryPolicy,
    sweep_fingerprint,
)

pytestmark = pytest.mark.chaos


def _settled_children(timeout_s: float = 10.0) -> list:
    """Child processes still alive after giving reaping a moment."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        alive = [p for p in multiprocessing.active_children() if p.is_alive()]
        if not alive:
            return []
        time.sleep(0.05)
    return alive


def assert_identical(result, reference):
    assert result.params == reference.params
    assert tuple(result.designs) == tuple(reference.designs)
    assert np.array_equal(result.ncf_fixed_work, reference.ncf_fixed_work)
    assert np.array_equal(result.ncf_fixed_time, reference.ncf_fixed_time)
    assert np.array_equal(result.codes, reference.codes)


@pytest.fixture
def reference(make_explorer, grid):
    return make_explorer().explore_arrays(grid)


class _InterruptingMaterializer:
    """A vector factory whose ``design_points`` raises KeyboardInterrupt
    on the parent's second materialization call — a deterministic Ctrl-C
    landing while the worker pool and the shared block are both live
    (workers only ever call ``batch_arrays``, never this)."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def __call__(self, params):
        return self.inner(params)

    def batch_arrays(self, columns):
        return self.inner.batch_arrays(columns)

    def design_points(self, chunk, arrays):
        self.calls += 1
        if self.calls == 2:
            raise KeyboardInterrupt()
        return self.inner.design_points(chunk, arrays)


class TestParallelChaos:
    def test_shard_crash_recovers_identically(
        self, make_explorer, grid, factory, tmp_path, fast_policy, reference
    ):
        plan = FaultPlan.plan(grid, seed=11, state_dir=tmp_path, crashes=1)
        explorer = make_explorer(
            factory=plan.wrap_vector(factory), workers=2, resilience=fast_policy
        )
        result = explorer.explore_arrays(grid)
        assert explorer.last_sweep.mode == "parallel-columnar"
        assert_identical(result, reference)
        stats = explorer.last_supervision
        assert stats.crashes >= 1
        assert stats.respawns >= 1
        assert parallel.live_blocks() == frozenset()

    def test_shard_hang_recovers_identically(
        self, make_explorer, grid, factory, tmp_path, reference
    ):
        plan = FaultPlan.plan(
            grid, seed=13, state_dir=tmp_path, hangs=1, hang_s=30.0
        )
        policy = RetryPolicy(
            max_retries=2, backoff_base_s=0.001, chunk_timeout_s=2.0
        )
        explorer = make_explorer(
            factory=plan.wrap_vector(factory), workers=2, resilience=policy
        )
        result = explorer.explore_arrays(grid)
        assert_identical(result, reference)
        assert explorer.last_supervision.timeouts >= 1
        assert explorer.last_supervision.respawns >= 1

    def test_shard_errors_recover_identically(
        self, make_explorer, grid, factory, tmp_path, fast_policy, reference
    ):
        plan = FaultPlan.plan(grid, seed=17, state_dir=tmp_path, errors=2)
        explorer = make_explorer(
            factory=plan.wrap_vector(factory), workers=2, resilience=fast_policy
        )
        result = explorer.explore_arrays(grid)
        assert_identical(result, reference)
        assert explorer.last_supervision.transient_errors >= 1

    def test_degraded_pool_finishes_in_process(
        self, make_explorer, grid, factory, tmp_path, reference
    ):
        # Respawn budget 0: the first crash declares the pool
        # irrecoverable and the remaining shards run in the parent —
        # through the mirrored worker state, writing the same block.
        plan = FaultPlan.plan(grid, seed=19, state_dir=tmp_path, crashes=1)
        policy = RetryPolicy(
            max_retries=2, backoff_base_s=0.001, max_respawns=0
        )
        explorer = make_explorer(
            factory=plan.wrap_vector(factory), workers=2, resilience=policy
        )
        result = explorer.explore_arrays(grid)
        assert_identical(result, reference)
        stats = explorer.last_supervision
        assert stats.pool_degraded
        assert stats.degraded_batches >= 1
        assert parallel.live_blocks() == frozenset()

    def test_unsupervised_crash_leaves_nothing_behind(
        self, make_explorer, grid, factory, tmp_path
    ):
        from concurrent.futures.process import BrokenProcessPool

        plan = FaultPlan.plan(grid, seed=23, state_dir=tmp_path, crashes=1)
        explorer = make_explorer(factory=plan.wrap_vector(factory), workers=2)
        with pytest.raises(BrokenProcessPool):
            explorer.explore_arrays(grid)
        assert _settled_children() == []
        assert parallel.live_blocks() == frozenset()
        assert parallel._STATE == {}


class TestParallelResume:
    def test_checkpointed_parallel_run_changes_nothing(
        self, make_explorer, grid, tmp_path, reference
    ):
        explorer = make_explorer(workers=2)
        result = explorer.explore_arrays(
            grid, checkpoint=tmp_path / "sweep.ckpt"
        )
        assert explorer.last_sweep.mode == "parallel-columnar"
        assert_identical(result, reference)

    def test_kill_then_resume_parallel_is_bit_exact(
        self, make_explorer, grid, tmp_path, reference, factory, sweep_baseline
    ):
        ckpt = tmp_path / "sweep.ckpt"
        serial = make_explorer()
        serial.explore_arrays(grid, checkpoint=ckpt)
        # Simulate a run killed after two chunks: rewrite the file with
        # only the first two completed chunks, then resume on workers.
        store = CheckpointStore(ckpt)
        fingerprint = sweep_fingerprint(
            axes=grid.axes,
            chunk_size=16,
            baseline=sweep_baseline,
            alpha=0.5,
            factory=factory,
        )
        full = store.load(kind="sweep", fingerprint=fingerprint)
        store.save(
            kind="sweep",
            fingerprint=fingerprint,
            state={"chunks": full["chunks"][:2]},
        )
        resumed = make_explorer(workers=2)
        result = resumed.explore_arrays(grid, checkpoint=ckpt, resume=True)
        assert resumed.last_sweep.mode == "parallel-columnar"
        assert_identical(result, reference)
        assert resumed.cache._entries == serial.cache._entries
        # Restored chunks were replayed, not re-dispatched: only the
        # non-restored suffix of the grid went through the kernels.
        assert resumed.last_sweep.shard_points <= len(grid) - 32
        # And the checkpoint grew back to full length, byte-identical.
        assert (
            store.load(kind="sweep", fingerprint=fingerprint)["chunks"]
            == full["chunks"]
        )

    def test_parallel_and_serial_checkpoints_identical(
        self, make_explorer, grid, tmp_path, factory, sweep_baseline
    ):
        serial_ckpt = tmp_path / "serial.ckpt"
        parallel_ckpt = tmp_path / "parallel.ckpt"
        make_explorer().explore_arrays(grid, checkpoint=serial_ckpt)
        make_explorer(workers=2).explore_arrays(grid, checkpoint=parallel_ckpt)
        fingerprint = sweep_fingerprint(
            axes=grid.axes,
            chunk_size=16,
            baseline=sweep_baseline,
            alpha=0.5,
            factory=factory,
        )
        assert CheckpointStore(serial_ckpt).load(
            kind="sweep", fingerprint=fingerprint
        ) == CheckpointStore(parallel_ckpt).load(
            kind="sweep", fingerprint=fingerprint
        )


class TestParallelInterruptHygiene:
    def test_interrupt_with_live_pool_leaves_nothing(
        self, make_explorer, grid, monkeypatch
    ):
        # Record the segment so its removal can be proven afterwards.
        created: list = []
        real_allocate = parallel.ColumnarBlock.allocate.__func__

        def recording(cls, total, **kwargs):
            block = real_allocate(cls, total, **kwargs)
            created.append(block.name)
            return block

        monkeypatch.setattr(
            parallel.ColumnarBlock, "allocate", classmethod(recording)
        )
        explorer = make_explorer(
            factory=_InterruptingMaterializer(SymmetricMulticoreFactory()),
            workers=2,
        )
        with pytest.raises(KeyboardInterrupt):
            explorer.explore_arrays(grid)
        assert _settled_children() == []
        assert parallel.live_blocks() == frozenset()
        assert parallel._STATE == {}
        assert created, "sweep never allocated a block"
        if created[0] is not None:
            from multiprocessing import shared_memory

            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=created[0])
