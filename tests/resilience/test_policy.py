"""RetryPolicy and SupervisionStats behaviour."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.resilience import DEFAULT_POLICY, RetryPolicy, SupervisionStats


class TestRetryPolicy:
    def test_defaults_are_sane(self):
        assert DEFAULT_POLICY.max_retries == 2
        assert DEFAULT_POLICY.chunk_timeout_s is None
        assert DEFAULT_POLICY.degrade_in_process is True

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=3.0, backoff_jitter=0.0
        )
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.3)
        assert policy.backoff_s(2) == pytest.approx(0.9)

    def test_backoff_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=3.0, backoff_jitter=0.25,
            jitter_seed=7,
        )
        twin = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=3.0, backoff_jitter=0.25,
            jitter_seed=7,
        )
        for attempt, base in enumerate((0.1, 0.3, 0.9)):
            delay = policy.backoff_s(attempt)
            assert base * 0.75 <= delay <= base * 1.25
            # Same seed, same draw sequence: retries are reproducible.
            assert delay == twin.backoff_s(attempt)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_s": -0.5},
            {"backoff_factor": 0.5},
            {"chunk_timeout_s": 0.0},
            {"chunk_timeout_s": -1.0},
            {"max_respawns": -1},
            {"backoff_jitter": -0.1},
            {"backoff_jitter": 1.5},
            {"heartbeat_timeout_s": 0.0},
            {"max_quarantine": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValidationError):
            RetryPolicy(**kwargs)

    def test_equality_ignores_sleep_hook(self):
        assert RetryPolicy(sleep=lambda s: None) == RetryPolicy()


class TestSupervisionStats:
    def test_faults_totals_the_three_kinds(self):
        stats = SupervisionStats(crashes=1, timeouts=2, transient_errors=3)
        assert stats.faults == 6

    def test_summary_empty_when_quiet(self):
        assert SupervisionStats().summary() == ""

    def test_summary_mentions_recovery_actions(self):
        stats = SupervisionStats(
            retries=4, crashes=1, respawns=2, degraded_batches=3,
            pool_degraded=True,
        )
        line = stats.summary()
        assert "1 crashes" in line
        assert "4 retries" in line
        assert "2 pool respawns" in line
        assert "3 batches ran in-process" in line
        assert "pool degraded" in line

    def test_as_dict_roundtrips_fields(self):
        stats = SupervisionStats(retries=1, timeouts=2)
        assert stats.as_dict()["retries"] == 1
        assert stats.as_dict()["timeouts"] == 2
