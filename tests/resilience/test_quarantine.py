"""Chaos suite for failure containment: quarantine, watchdog, salvage.

Like ``test_chaos.py``, nothing here is mocked: poison points really
kill worker processes with ``os._exit``, stale faults really wedge a
worker past the heartbeat deadline, and irrecoverable pools are really
irrecoverable. The invariant under test is the containment contract —
every *surviving* point is byte-identical to the fault-free sweep, and
every excluded point is reported, never silently dropped.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.resilience import FaultPlan, QuarantineLedger, RetryPolicy
from repro.resilience.containment import point_key

pytestmark = pytest.mark.chaos


@pytest.fixture
def reference(make_explorer, grid):
    return make_explorer().explore_arrays(grid)


@pytest.fixture
def quarantine_policy() -> RetryPolicy:
    """Small retry budget so bisection engages quickly."""
    return RetryPolicy(
        max_retries=1, backoff_base_s=0.001, chunk_timeout_s=15.0
    )


def assert_survivors_identical(result, reference, quarantined):
    """The non-quarantined subset matches the fault-free sweep exactly."""
    excluded = {point_key(params) for params in quarantined}
    keep = [
        index
        for index, params in enumerate(reference.params)
        if point_key(params) not in excluded
    ]
    assert len(keep) == len(reference.params) - len(excluded)
    assert tuple(result.params) == tuple(reference.params[i] for i in keep)
    assert tuple(result.designs) == tuple(reference.designs[i] for i in keep)
    for field in ("perf", "ncf_fixed_work", "ncf_fixed_time", "codes"):
        assert np.array_equal(
            getattr(result, field), getattr(reference, field)[keep]
        )


def wrapped(plan, factory, mode):
    """Scalar-pool hides ``batch_arrays``; parallel-columnar keeps it."""
    return plan.wrap(factory) if mode == "scalar-pool" else plan.wrap_vector(factory)


class TestPoisonQuarantine:
    @pytest.mark.parametrize("mode", ["scalar-pool", "parallel-columnar"])
    def test_poison_points_are_isolated_and_survivors_match(
        self, make_explorer, grid, factory, tmp_path, quarantine_policy,
        reference, mode,
    ):
        plan = FaultPlan.plan(grid, seed=23, state_dir=tmp_path, poisons=2)
        ledger = QuarantineLedger(tmp_path / "poison.json")
        explorer = make_explorer(
            factory=wrapped(plan, factory, mode),
            workers=2,
            resilience=quarantine_policy,
        )
        result = explorer.explore_arrays(grid, quarantine=ledger)

        assert len(result.quarantined) == 2
        assert result.failure is None and result.complete
        poisoned = {point_key(params) for params in plan.poison_points}
        assert {point_key(params) for params in result.quarantined} == poisoned
        assert_survivors_identical(result, reference, result.quarantined)

        stats = explorer.last_supervision
        assert stats is not None
        assert stats.quarantined == 2
        assert stats.bisect_probes > 0
        assert explorer.last_sweep.quarantined_points == 2
        assert explorer.last_sweep.mode == mode

    @pytest.mark.parametrize("mode", ["scalar-pool", "parallel-columnar"])
    def test_ledger_prefilter_skips_known_poison_without_crashing(
        self, make_explorer, grid, factory, tmp_path, quarantine_policy,
        reference, mode,
    ):
        plan = FaultPlan.plan(grid, seed=23, state_dir=tmp_path, poisons=2)
        ledger = QuarantineLedger(tmp_path / "poison.json")
        first = make_explorer(
            factory=wrapped(plan, factory, mode),
            workers=2,
            resilience=quarantine_policy,
        )
        first.explore_arrays(grid, quarantine=ledger)
        assert first.last_supervision.crashes > 0

        # Second run, same ledger path, fresh explorer: the poison
        # points are excluded up front — zero crashes, zero bisections.
        rerun = make_explorer(
            factory=wrapped(plan, factory, mode),
            workers=2,
            resilience=quarantine_policy,
        )
        result = rerun.explore_arrays(
            grid, quarantine=QuarantineLedger(tmp_path / "poison.json")
        )
        assert len(result.quarantined) == 2
        stats = rerun.last_supervision
        assert stats is None or (stats.crashes == 0 and stats.quarantined == 0)
        assert_survivors_identical(result, reference, result.quarantined)

    def test_poison_without_ledger_fails_loudly(
        self, make_explorer, grid, factory, tmp_path
    ):
        """No ledger attached: bisection never engages and the sweep
        must fail rather than quarantine silently in memory.

        ``degrade_in_process=False`` keeps the poison point out of the
        test process itself (in-process degradation would replay the
        ``os._exit`` in the pytest parent).
        """
        from repro.core.errors import WorkerPoolError

        plan = FaultPlan.plan(grid, seed=23, state_dir=tmp_path, poisons=1)
        policy = RetryPolicy(
            max_retries=1,
            backoff_base_s=0.001,
            chunk_timeout_s=15.0,
            max_respawns=1,
            degrade_in_process=False,
        )
        explorer = make_explorer(
            factory=plan.wrap(factory), workers=2, resilience=policy
        )
        with pytest.raises(WorkerPoolError):
            explorer.explore_arrays(grid)


class TestHeartbeatWatchdog:
    def test_stale_pool_is_reaped_before_chunk_timeout(
        self, make_explorer, grid, factory, tmp_path, reference
    ):
        plan = FaultPlan.plan(
            grid, seed=37, state_dir=tmp_path, stales=1, stale_s=60.0
        )
        policy = RetryPolicy(
            max_retries=2,
            backoff_base_s=0.001,
            chunk_timeout_s=None,
            heartbeat_timeout_s=0.5,
        )
        explorer = make_explorer(
            factory=plan.wrap(factory), workers=2, resilience=policy
        )
        start = time.monotonic()
        result = explorer.explore_arrays(grid)
        wall = time.monotonic() - start

        stats = explorer.last_supervision
        assert stats is not None
        assert stats.watchdog_reaps >= 1
        assert stats.respawns >= 1
        # The fault sleeps 60s; the watchdog deadline is 0.5s. Recovery
        # well under the fault duration proves the reap, not the sleep,
        # ended the hang (generous bound for loaded CI machines).
        assert wall < 30.0
        # The stale fault is single-fire, so the retry completes the
        # chunk and the sweep loses nothing.
        assert result.complete and not result.quarantined
        assert tuple(result.params) == tuple(reference.params)
        assert np.array_equal(result.ncf_fixed_work, reference.ncf_fixed_work)
        assert np.array_equal(result.codes, reference.codes)


class TestSalvage:
    def test_irrecoverable_pool_salvages_completed_prefix(
        self, make_explorer, grid, factory, tmp_path, reference
    ):
        plan = FaultPlan.plan(grid, seed=31, state_dir=tmp_path, poisons=1)
        policy = RetryPolicy(
            max_retries=0,
            backoff_base_s=0.001,
            chunk_timeout_s=15.0,
            max_respawns=0,
            degrade_in_process=False,
            salvage=True,
        )
        ckpt = tmp_path / "salvage.ckpt"
        explorer = make_explorer(
            factory=plan.wrap(factory), workers=2, resilience=policy
        )
        result = explorer.explore_arrays(grid, checkpoint=ckpt)

        assert not result.complete
        report = result.failure
        assert report is not None
        assert report.completed_chunks < report.total_chunks
        assert report.pending_points > 0
        assert report.checkpoint == str(ckpt)
        assert ckpt.exists()
        assert "salvaged:" in report.summary()
        assert explorer.last_supervision.salvaged >= 1
        assert explorer.last_sweep.salvaged

        # Whatever was salvaged is byte-identical to the reference
        # prefix — a partial result is still a correct result.
        kept = len(result.params)
        assert tuple(result.params) == tuple(reference.params[:kept])
        assert np.array_equal(
            result.ncf_fixed_work, reference.ncf_fixed_work[:kept]
        )

    def test_salvaged_checkpoint_resumes_to_completion(
        self, make_explorer, grid, factory, tmp_path, quarantine_policy,
        reference,
    ):
        plan = FaultPlan.plan(grid, seed=31, state_dir=tmp_path, poisons=1)
        salvage_policy = RetryPolicy(
            max_retries=0,
            backoff_base_s=0.001,
            chunk_timeout_s=15.0,
            max_respawns=0,
            degrade_in_process=False,
            salvage=True,
        )
        ckpt = tmp_path / "salvage.ckpt"
        poisoned_factory = plan.wrap(factory)
        partial = make_explorer(
            factory=poisoned_factory, workers=2, resilience=salvage_policy
        ).explore_arrays(grid, checkpoint=ckpt)
        assert not partial.complete

        # Resume the same run with a quarantine ledger and a normal
        # retry budget: the poison point is bisected out and everything
        # else completes byte-identically.
        resumed = make_explorer(
            factory=poisoned_factory, workers=2, resilience=quarantine_policy
        ).explore_arrays(
            grid,
            checkpoint=ckpt,
            resume=True,
            quarantine=QuarantineLedger(tmp_path / "poison.json"),
        )
        assert resumed.complete
        assert len(resumed.quarantined) == 1
        assert_survivors_identical(resumed, reference, resumed.quarantined)


class TestMonteCarloResilience:
    def test_supervised_sampling_matches_unsupervised(self, fast_policy):
        from repro.core.design import DesignPoint
        from repro.core.scenario import BALANCED
        from repro.dse.montecarlo import (
            sample_measurement_noise,
            sample_verdicts,
        )

        design = DesignPoint(name="d", area=4.0, perf=2.0, power=3.0)
        base = DesignPoint.baseline("b")
        plain_v = sample_verdicts(
            design, base, BALANCED, samples=2000, seed=3, workers=2
        )
        supervised_v = sample_verdicts(
            design, base, BALANCED, samples=2000, seed=3, workers=2,
            resilience=fast_policy,
        )
        assert plain_v == supervised_v

        plain_n = sample_measurement_noise(
            design, base, 0.5, samples=2000, seed=3, workers=2
        )
        supervised_n = sample_measurement_noise(
            design, base, 0.5, samples=2000, seed=3, workers=2,
            resilience=fast_policy,
        )
        assert plain_n == supervised_n


class TestNoOrphans:
    def test_quarantine_run_leaves_no_workers_behind(
        self, make_explorer, grid, factory, tmp_path, quarantine_policy
    ):
        import multiprocessing.process as mp_process

        plan = FaultPlan.plan(grid, seed=23, state_dir=tmp_path, poisons=2)
        explorer = make_explorer(
            factory=plan.wrap(factory), workers=2, resilience=quarantine_policy
        )
        explorer.explore_arrays(
            grid, quarantine=QuarantineLedger(tmp_path / "poison.json")
        )
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            alive = [
                p for p in mp_process.active_children() if p.is_alive()
            ]
            if not alive:
                break
            time.sleep(0.05)
        assert not [p for p in mp_process.active_children() if p.is_alive()]
