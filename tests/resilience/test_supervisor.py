"""SupervisedPool recovery ladder, tested rung by rung.

These tests drive the supervisor through injected executors (threads,
deliberately failing constructors) so every branch runs fast and
deterministically; the chaos suite (``test_chaos.py``) exercises the
same ladder against real crashed/hung worker processes.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.core.errors import ValidationError, WorkerPoolError
from repro.resilience import RetryPolicy, SupervisedPool

NO_SLEEP = dict(backoff_base_s=0.0, sleep=lambda s: None)


def double(job):
    return job * 2


class Flaky:
    """Raises *failures* times for marked jobs, then succeeds."""

    def __init__(self, failures: int, exception=RuntimeError):
        self.failures = failures
        self.exception = exception
        self.calls = 0

    def __call__(self, job):
        if job == "bad" and self.calls < self.failures:
            self.calls += 1
            raise self.exception("flaky")
        return job


class TestHappyPath:
    def test_results_in_job_order(self):
        with SupervisedPool(2, RetryPolicy(**NO_SLEEP), ThreadPoolExecutor) as pool:
            assert pool.run(double, list(range(10))) == [
                2 * n for n in range(10)
            ]

    def test_empty_jobs(self):
        with SupervisedPool(2, RetryPolicy(**NO_SLEEP), ThreadPoolExecutor) as pool:
            assert pool.run(double, []) == []

    def test_more_workers_than_jobs(self):
        with SupervisedPool(8, RetryPolicy(**NO_SLEEP), ThreadPoolExecutor) as pool:
            assert pool.run(double, [1]) == [2]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValidationError):
            SupervisedPool(0)


class TestRetryLadder:
    def test_transient_error_retried_to_success(self):
        # Thread pools share memory, so the Flaky counter is visible to
        # the "workers" and the second dispatch succeeds.
        flaky = Flaky(failures=1)
        with SupervisedPool(2, RetryPolicy(max_retries=2, **NO_SLEEP), ThreadPoolExecutor) as pool:
            assert pool.run(flaky, ["ok", "bad"]) == ["ok", "bad"]
            assert pool.stats.transient_errors == 1
            assert pool.stats.retries == 1
            assert pool.stats.degraded_batches == 0

    def test_backoff_schedule_followed(self):
        sleeps: list[float] = []
        policy = RetryPolicy(
            max_retries=3,
            backoff_base_s=0.1,
            backoff_factor=2.0,
            backoff_jitter=0.0,
            sleep=sleeps.append,
        )
        flaky = Flaky(failures=2)
        with SupervisedPool(1, policy, ThreadPoolExecutor) as pool:
            pool.run(flaky, ["bad"])
        assert sleeps == pytest.approx([0.1, 0.2])

    def test_persistent_bug_reraises_after_degradation(self):
        """A genuine factory bug is not retried away: the in-process
        rung re-raises it unchanged."""
        policy = RetryPolicy(max_retries=1, **NO_SLEEP)
        with SupervisedPool(1, policy, ThreadPoolExecutor) as pool:
            with pytest.raises(RuntimeError, match="flaky"):
                pool.run(Flaky(failures=99), ["bad"])

    def test_degradation_disabled_raises_worker_pool_error(self):
        policy = RetryPolicy(
            max_retries=0, degrade_in_process=False, **NO_SLEEP
        )
        with SupervisedPool(1, policy, ThreadPoolExecutor) as pool:
            with pytest.raises(WorkerPoolError, match="degradation is disabled"):
                pool.run(Flaky(failures=99), ["bad"])

    def test_broken_pool_counts_as_crash_and_respawns(self):
        flaky = Flaky(failures=1, exception=BrokenProcessPool)
        policy = RetryPolicy(max_retries=2, **NO_SLEEP)
        with SupervisedPool(2, policy, ThreadPoolExecutor) as pool:
            assert pool.run(flaky, ["ok", "bad"]) == ["ok", "bad"]
            assert pool.stats.crashes == 1
            assert pool.stats.respawns == 1

    def test_only_failed_batches_redispatch(self):
        calls: list[object] = []

        class Recorder:
            def __call__(self, job):
                calls.append(job)
                if job == "bad" and calls.count("bad") == 1:
                    raise RuntimeError("flaky")
                return job

        with SupervisedPool(2, RetryPolicy(max_retries=2, **NO_SLEEP), ThreadPoolExecutor) as pool:
            # Two workers, two batches: ["ok0"], ["bad"]. Only the
            # failing batch may be dispatched twice.
            assert pool.run(Recorder(), ["ok0", "bad"]) == ["ok0", "bad"]
        assert calls.count("ok0") == 1
        assert calls.count("bad") == 2


class TestDegradedPool:
    def test_unspawnable_executor_degrades_to_in_process(self):
        def refuse(max_workers):
            raise OSError("no more processes")

        with SupervisedPool(2, RetryPolicy(**NO_SLEEP), refuse) as pool:
            assert pool.run(double, [1, 2, 3]) == [2, 4, 6]
            assert pool.degraded
            assert pool.stats.pool_degraded
            assert pool.stats.degraded_batches == 2  # split over 2 batches

    def test_respawn_budget_exhaustion_degrades(self):
        policy = RetryPolicy(max_retries=10, max_respawns=1, **NO_SLEEP)
        flaky = Flaky(failures=2, exception=BrokenProcessPool)
        with SupervisedPool(1, policy, ThreadPoolExecutor) as pool:
            assert pool.run(flaky, ["bad"]) == ["bad"]
            assert pool.degraded
            assert pool.stats.respawns == 2  # budget 1, second trips it

    def test_degraded_pool_stays_degraded(self):
        def refuse(max_workers):
            raise OSError("no")

        with SupervisedPool(2, RetryPolicy(**NO_SLEEP), refuse) as pool:
            pool.run(double, [1])
            before = pool.stats.pool_degraded
            assert pool.run(double, [2]) == [4]
            assert before and pool.degraded


class TestShutdown:
    def test_shutdown_without_use_is_safe(self):
        pool = SupervisedPool(2, RetryPolicy(**NO_SLEEP), ThreadPoolExecutor)
        pool.shutdown()
        pool.shutdown()  # idempotent

    def test_context_manager_shuts_down(self):
        with SupervisedPool(2, RetryPolicy(**NO_SLEEP), ThreadPoolExecutor) as pool:
            pool.run(double, [1])
        assert pool._executor is None
