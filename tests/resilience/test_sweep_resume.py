"""Checkpointed sweeps: kill, resume, byte-identical results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import CheckpointError, ConfigurationError
from repro.resilience import (
    CheckpointStore,
    corrupt_checkpoint,
    sweep_fingerprint,
    truncate_checkpoint,
)


def assert_sweeps_identical(result, reference):
    assert result.params == reference.params
    assert tuple(result.designs) == tuple(reference.designs)
    assert np.array_equal(result.perf, reference.perf)
    assert np.array_equal(result.ncf_fixed_work, reference.ncf_fixed_work)
    assert np.array_equal(result.ncf_fixed_time, reference.ncf_fixed_time)
    assert np.array_equal(result.codes, reference.codes)


@pytest.fixture
def reference(make_explorer, grid):
    return make_explorer().explore_arrays(grid)


@pytest.fixture
def ckpt(tmp_path):
    return tmp_path / "sweep.ckpt"


class TestCheckpointedSweep:
    def test_checkpointing_changes_nothing(self, make_explorer, grid, ckpt, reference):
        result = make_explorer().explore_arrays(grid, checkpoint=ckpt)
        assert_sweeps_identical(result, reference)
        assert ckpt.exists()

    def test_resume_from_complete_checkpoint(self, make_explorer, grid, ckpt, reference):
        plain = make_explorer()
        plain.explore_arrays(grid, checkpoint=ckpt)
        resumed = make_explorer()
        result = resumed.explore_arrays(grid, checkpoint=ckpt, resume=True)
        assert_sweeps_identical(result, reference)
        # Bit-exact resume includes the memo: same entries, same outcomes.
        assert resumed.cache._entries == plain.cache._entries

    def test_resume_from_partial_checkpoint(
        self, make_explorer, grid, ckpt, reference, factory, sweep_baseline
    ):
        plain = make_explorer()
        plain.explore_arrays(grid, checkpoint=ckpt)
        # Simulate a run killed after two chunks: rewrite the file with
        # only the first two completed chunks.
        store = CheckpointStore(ckpt)
        fingerprint = sweep_fingerprint(
            axes=grid.axes,
            chunk_size=16,
            baseline=sweep_baseline,
            alpha=0.5,
            factory=factory,
        )
        full = store.load(kind="sweep", fingerprint=fingerprint)
        store.save(
            kind="sweep",
            fingerprint=fingerprint,
            state={"chunks": full["chunks"][:2]},
        )
        resumed = make_explorer()
        result = resumed.explore_arrays(grid, checkpoint=ckpt, resume=True)
        assert_sweeps_identical(result, reference)
        assert resumed.cache._entries == plain.cache._entries
        # The resumed run completed the checkpoint back to full length.
        assert (
            store.load(kind="sweep", fingerprint=fingerprint)["chunks"]
            == full["chunks"]
        )

    def test_resume_skips_restored_evaluations(self, make_explorer, grid, ckpt):
        make_explorer().explore_arrays(grid, checkpoint=ckpt)
        resumed = make_explorer()
        resumed.explore_arrays(grid, checkpoint=ckpt, resume=True)
        # Everything was replayed from the file: zero factory calls.
        assert resumed.cache.stats().misses == 0

    def test_resume_requires_checkpoint_path(self, make_explorer, grid):
        with pytest.raises(ConfigurationError, match="requires a checkpoint"):
            make_explorer().explore_arrays(grid, resume=True)

    def test_explore_passthrough(self, make_explorer, grid, ckpt):
        scalar = make_explorer().explore(grid, checkpoint=ckpt)
        resumed = make_explorer().explore(grid, checkpoint=ckpt, resume=True)
        assert scalar == resumed


class TestResumeSafety:
    def test_mismatched_configuration_refused(self, make_explorer, grid, ckpt):
        make_explorer().explore_arrays(grid, checkpoint=ckpt)
        other = make_explorer(chunk_size=8)
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            other.explore_arrays(grid, checkpoint=ckpt, resume=True)

    def test_truncated_checkpoint_restarts_cold(
        self, make_explorer, grid, ckpt, reference
    ):
        make_explorer().explore_arrays(grid, checkpoint=ckpt)
        truncate_checkpoint(ckpt)
        result = make_explorer().explore_arrays(grid, checkpoint=ckpt, resume=True)
        assert_sweeps_identical(result, reference)

    def test_corrupted_checkpoint_restarts_cold(
        self, make_explorer, grid, ckpt, reference
    ):
        make_explorer().explore_arrays(grid, checkpoint=ckpt)
        corrupt_checkpoint(ckpt)
        result = make_explorer().explore_arrays(grid, checkpoint=ckpt, resume=True)
        assert_sweeps_identical(result, reference)

    def test_missing_checkpoint_is_cold_start(self, make_explorer, grid, ckpt, reference):
        result = make_explorer().explore_arrays(grid, checkpoint=ckpt, resume=True)
        assert_sweeps_identical(result, reference)
