"""Unit tests for the branch-prediction model (Figure 8, Finding #12)."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.core.scenario import UseScenario
from repro.speculation.branch_prediction import (
    PARIKH_HYBRID,
    BranchPredictorEffect,
    max_sustainable_area,
    ncf_vs_area,
    predictor_design,
)

FW = UseScenario.FIXED_WORK
FT = UseScenario.FIXED_TIME


class TestParikhNumbers:
    def test_quoted_effect(self):
        assert PARIKH_HYBRID.perf_factor == pytest.approx(1.14)
        assert PARIKH_HYBRID.energy_factor == pytest.approx(0.93)

    def test_power_rises_about_six_percent(self):
        """The paper quotes +6.6 % power from -7 % energy and +14 %
        perf; the exact product 0.93 x 1.14 is +6.02 % (the paper
        presumably rounds from less-rounded inputs). We keep the exact
        derivation — see EXPERIMENTS.md."""
        assert PARIKH_HYBRID.power_factor == pytest.approx(1.0602, abs=0.001)
        assert PARIKH_HYBRID.power_factor == pytest.approx(1.066, abs=0.01)


class TestPredictorDesign:
    def test_area_share_applied(self):
        d = predictor_design(0.044)
        assert d.area == pytest.approx(1.044)
        assert d.perf == pytest.approx(1.14)
        assert d.power == pytest.approx(1.0602)

    def test_zero_area(self):
        assert predictor_design(0.0).area == 1.0

    def test_rejects_negative_area(self):
        with pytest.raises(ValidationError):
            predictor_design(-0.01)


class TestNCFCurves:
    def test_fixed_work_affine_in_area(self):
        """NCF(x) = alpha(1+x) + (1-alpha)*0.93: check two points."""
        assert ncf_vs_area(0.0, FW, 0.8) == pytest.approx(0.8 + 0.2 * 0.93)
        assert ncf_vs_area(0.08, FW, 0.8) == pytest.approx(0.8 * 1.08 + 0.2 * 0.93)

    def test_fixed_time_always_above_one(self):
        for share in (0.0, 0.02, 0.08):
            for alpha in (0.2, 0.8):
                assert ncf_vs_area(share, FT, alpha) > 1.0

    def test_fixed_work_operational_dominated_below_one_through_8pct(self):
        for share in (0.0, 0.04, 0.08):
            assert ncf_vs_area(share, FW, 0.2) < 1.0

    def test_ncf_increases_with_area(self):
        values = [ncf_vs_area(x, FW, 0.8) for x in (0.0, 0.02, 0.05, 0.08)]
        assert values == sorted(values)


class TestFinding12Breakevens:
    def test_embodied_fixed_work_boundary_near_2pct(self):
        boundary = max_sustainable_area(FW, 0.8)
        assert boundary == pytest.approx(0.0175, abs=0.0005)

    def test_boundary_is_exact_ncf_one(self):
        boundary = max_sustainable_area(FW, 0.8)
        assert ncf_vs_area(boundary, FW, 0.8) == pytest.approx(1.0)

    def test_operational_fixed_work_boundary_is_generous(self):
        boundary = max_sustainable_area(FW, 0.2)
        assert boundary == pytest.approx(0.07 * 0.8 / 0.2)

    def test_fixed_time_never_sustainable(self):
        assert max_sustainable_area(FT, 0.8) is None
        assert max_sustainable_area(FT, 0.2) is None

    def test_alpha_zero_with_energy_win_is_unbounded(self):
        assert max_sustainable_area(FW, 0.0) == float("inf")

    def test_alpha_zero_with_power_loss_is_none(self):
        assert max_sustainable_area(FT, 0.0) is None


class TestCustomEffect:
    def test_energy_neutral_predictor(self):
        """A predictor with no energy effect is never area-sustainable."""
        neutral = BranchPredictorEffect(perf_factor=1.1, energy_factor=1.0)
        assert max_sustainable_area(FW, 0.5, neutral) == pytest.approx(0.0)

    def test_rejects_bad_factors(self):
        with pytest.raises(ValidationError):
            BranchPredictorEffect(perf_factor=0.0, energy_factor=1.0)
