"""Unit tests for the runahead-execution model (Finding #13)."""

from __future__ import annotations

import pytest

from repro.core.classify import Sustainability
from repro.core.errors import ValidationError
from repro.core.scenario import UseScenario
from repro.speculation.runahead import (
    PRE,
    RunaheadEffect,
    classify_runahead,
    runahead_design,
    runahead_ncf,
)

FW = UseScenario.FIXED_WORK
FT = UseScenario.FIXED_TIME


class TestPRENumbers:
    def test_quoted_effect(self):
        assert PRE.perf_factor == pytest.approx(1.382)
        assert PRE.energy_factor == pytest.approx(0.932)
        assert PRE.area_overhead == pytest.approx(0.005)

    def test_power_factor_derivation(self):
        """0.932 x 1.382 = 1.288 (the paper rounds to +29.8 %)."""
        assert PRE.power_factor == pytest.approx(1.288, abs=0.001)


class TestDesign:
    def test_design_fields(self):
        d = runahead_design()
        assert d.area == pytest.approx(1.005)
        assert d.perf == pytest.approx(1.382)
        assert d.energy == pytest.approx(0.932)


class TestFinding13NCFs:
    @pytest.mark.parametrize(
        "scenario,alpha,expected",
        [
            (FW, 0.2, 0.95),
            (FT, 0.2, 1.23),
            (FW, 0.8, 0.99),
            (FT, 0.8, 1.06),
        ],
    )
    def test_paper_ncf_values(self, scenario, alpha, expected):
        assert runahead_ncf(scenario, alpha) == pytest.approx(expected, abs=0.005)

    @pytest.mark.parametrize("alpha", [0.2, 0.5, 0.8])
    def test_weakly_sustainable(self, alpha):
        assert classify_runahead(alpha) is Sustainability.WEAK


class TestCustomEffect:
    def test_energy_and_power_win_is_strong(self):
        gentle = RunaheadEffect(perf_factor=1.02, energy_factor=0.9, area_overhead=0.0)
        assert classify_runahead(0.5, gentle) is Sustainability.STRONG

    def test_rejects_negative_area(self):
        with pytest.raises(ValidationError):
            RunaheadEffect(perf_factor=1.1, energy_factor=0.9, area_overhead=-0.1)
