"""Reproduction tests for the §7 case study / Figure 9."""

from __future__ import annotations

import pytest

from repro.core.classify import Sustainability
from repro.core.scenario import UseScenario
from repro.studies.case_study import CaseStudyConfig, case_study, figure9

FW = UseScenario.FIXED_WORK
FT = UseScenario.FIXED_TIME


@pytest.fixture(scope="module")
def points():
    return {p.cores: p for p in case_study()}


class TestFrequencies:
    def test_paper_quoted_multipliers(self, points):
        assert points[4].frequency_multiplier == pytest.approx(1.414, abs=0.001)
        assert points[8].frequency_multiplier == pytest.approx(1.237, abs=0.001)

    def test_monotone_decreasing(self, points):
        phis = [points[n].frequency_multiplier for n in (4, 5, 6, 7, 8)]
        assert phis == sorted(phis, reverse=True)


class TestPerformance:
    def test_paper_perf_range_for_sober_options(self, points):
        """4-6 cores deliver 1.41x-1.52x (the paper's quoted range)."""
        assert points[4].perf == pytest.approx(1.414, abs=0.005)
        assert points[6].perf == pytest.approx(1.52, abs=0.005)

    def test_perf_increases_with_cores(self, points):
        perfs = [points[n].perf for n in (4, 5, 6, 7, 8)]
        assert perfs == sorted(perfs)

    def test_x_axis_range(self, points):
        """All options land in the 1.4-1.6 Figure 9 x-range."""
        for p in points.values():
            assert 1.4 <= p.perf <= 1.6


class TestEmbodied:
    def test_paper_endpoints(self, points):
        assert points[4].embodied == pytest.approx(0.626, abs=0.002)
        assert points[8].embodied == pytest.approx(1.252, abs=0.002)

    def test_linear_in_cores(self, points):
        assert points[6].embodied == pytest.approx(1.5 * points[4].embodied)


class TestOperational:
    def test_iso_power_by_construction(self, points):
        for p in points.values():
            assert p.power == 1.0

    def test_fixed_work_energy_improves_with_perf(self, points):
        for p in points.values():
            assert p.energy == pytest.approx(1.0 / p.perf)


class TestClassification:
    @pytest.mark.parametrize("cores", [4, 5, 6])
    @pytest.mark.parametrize("alpha", [0.2, 0.8])
    def test_sober_options_strong(self, points, cores, alpha):
        assert points[cores].category(alpha) is Sustainability.STRONG

    def test_seven_eight_not_sustainable_embodied(self, points):
        assert points[7].category(0.8) is Sustainability.LESS
        assert points[8].category(0.8) is Sustainability.LESS

    def test_seven_eight_weak_operational(self, points):
        assert points[7].category(0.2) is Sustainability.WEAK
        assert points[8].category(0.2) is Sustainability.WEAK


class TestFigure9:
    def test_structure(self):
        fig = figure9()
        assert len(fig.panels) == 2
        for panel in fig.panels:
            assert {s.name for s in panel.series} == {"fixed-work", "fixed-time"}
            for series in panel.series:
                assert [p.label for p in series.points] == [
                    f"{n} cores" for n in (4, 5, 6, 7, 8)
                ]

    def test_operational_fixed_time_values(self):
        """Panel (b) fixed-time: NCF = 0.2*emb + 0.8 exactly."""
        fig = figure9()
        series = fig.panel("(b) operational dominated").series_by_name("fixed-time")
        first, last = series.points[0], series.points[-1]
        assert first.y == pytest.approx(0.2 * 0.626 + 0.8, abs=0.001)
        assert last.y == pytest.approx(0.2 * 1.252 + 0.8, abs=0.001)


class TestCustomConfig:
    def test_highly_parallel_workload_favors_more_cores(self):
        """With f = 0.95 the 8-core option gains more performance."""
        modest = {p.cores: p for p in case_study()}
        parallel = {
            p.cores: p
            for p in case_study(CaseStudyConfig(parallel_fraction=0.95))
        }
        assert parallel[8].perf > modest[8].perf

    def test_old_cores_baseline(self):
        config = CaseStudyConfig(old_cores=2, core_options=(2, 4))
        points = {p.cores: p for p in case_study(config)}
        assert points[2].embodied == pytest.approx(0.626, abs=0.002)
        assert points[2].frequency_multiplier == pytest.approx(1.414, abs=0.001)
