"""Tests for the shared panel scaffolding."""

from __future__ import annotations

import pytest

from repro.core.scenario import EMBODIED_DOMINATED, OPERATIONAL_DOMINATED, UseScenario
from repro.studies.common import FOUR_PANELS, TWO_WEIGHT_PANELS


class TestFourPanels:
    def test_layout_matches_paper(self):
        """(a) emb/fw, (b) emb/ft, (c) op/fw, (d) op/ft."""
        assert [p.key for p in FOUR_PANELS] == ["a", "b", "c", "d"]
        assert FOUR_PANELS[0].scenario is UseScenario.FIXED_WORK
        assert FOUR_PANELS[1].scenario is UseScenario.FIXED_TIME
        assert FOUR_PANELS[0].weight is EMBODIED_DOMINATED
        assert FOUR_PANELS[2].weight is OPERATIONAL_DOMINATED

    def test_alphas(self):
        assert [p.alpha for p in FOUR_PANELS] == [0.8, 0.8, 0.2, 0.2]

    def test_titles_name_regime_and_scenario(self):
        for panel in FOUR_PANELS:
            assert panel.scenario.value in panel.title
            regime = "embodied" if panel.weight is EMBODIED_DOMINATED else "operational"
            assert regime in panel.title


class TestTwoWeightPanels:
    def test_two_regimes(self):
        keys = [key for key, _, _ in TWO_WEIGHT_PANELS]
        weights = [weight for _, _, weight in TWO_WEIGHT_PANELS]
        assert keys == ["a", "b"]
        assert weights == [EMBODIED_DOMINATED, OPERATIONAL_DOMINATED]


class TestCLIFormatMatrix:
    """Every figure must render in every CLI format without error."""

    @pytest.mark.parametrize("fmt", ["ascii", "csv", "json", "md", "html"])
    @pytest.mark.parametrize("name", ["figure1", "figure2", "figure5", "figure9"])
    def test_figure_renders(self, capsys, fmt, name):
        from repro.cli import main

        assert main(["figure", name, "--format", fmt]) == 0
        assert capsys.readouterr().out
