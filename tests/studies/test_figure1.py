"""Reproduction tests for Figure 1."""

from __future__ import annotations

import pytest

from repro.studies.figure1 import PAPER_DIE_SIZES_MM2, figure1


@pytest.fixture(scope="module")
def fig():
    return figure1()


class TestStructure:
    def test_single_panel_two_series(self, fig):
        assert fig.figure_id == "figure1"
        assert len(fig.panels) == 1
        names = [s.name for s in fig.panels[0].series]
        assert names == ["perfect yield", "Murphy model"]

    def test_x_axis_range(self, fig):
        xs = fig.panels[0].series[0].xs
        assert xs[0] == 100.0
        assert xs[-1] == 800.0

    def test_default_sweep_matches_constant(self, fig):
        assert fig.panels[0].series[0].xs == PAPER_DIE_SIZES_MM2


class TestShape:
    def test_both_curves_start_at_one(self, fig):
        for series in fig.panels[0].series:
            assert series.points[0].y == pytest.approx(1.0)

    def test_both_curves_monotone_increasing(self, fig):
        for series in fig.panels[0].series:
            ys = list(series.ys)
            assert ys == sorted(ys)

    def test_murphy_above_perfect_everywhere_past_base(self, fig):
        perfect = fig.panels[0].series_by_name("perfect yield")
        murphy = fig.panels[0].series_by_name("Murphy model")
        for p_pt, m_pt in list(zip(perfect.points, murphy.points))[1:]:
            assert m_pt.y > p_pt.y

    def test_paper_y_axis_scale(self, fig):
        """The paper's y-axis tops out around 20 at 800 mm^2."""
        murphy = fig.panels[0].series_by_name("Murphy model")
        assert 10.0 < murphy.points[-1].y < 22.0

    def test_murphy_superlinearity(self, fig):
        """Perfect ~ linear, Murphy ~ quadratic: check curvature by
        comparing growth of the two halves of the sweep."""
        murphy = fig.panels[0].series_by_name("Murphy model")
        ys = murphy.ys
        first_half_growth = ys[len(ys) // 2] - ys[0]
        second_half_growth = ys[-1] - ys[len(ys) // 2]
        assert second_half_growth > 1.3 * first_half_growth


class TestTrendlines:
    """The caption claims the two curves are well approximated by a
    linear and a second-degree-polynomial trendline, respectively —
    verify with least-squares fits."""

    @staticmethod
    def r_squared(xs, ys, degree):
        import numpy as np

        coeffs = np.polyfit(xs, ys, degree)
        predicted = np.polyval(coeffs, xs)
        residual = np.sum((np.asarray(ys) - predicted) ** 2)
        total = np.sum((np.asarray(ys) - np.mean(ys)) ** 2)
        return 1.0 - residual / total

    def test_perfect_yield_is_nearly_linear(self, fig):
        series = fig.panels[0].series_by_name("perfect yield")
        # R^2 = 0.9990: near-linear, the small residual being the de
        # Vries edge-loss term.
        assert self.r_squared(series.xs, series.ys, 1) > 0.998

    def test_murphy_needs_the_quadratic_term(self, fig):
        series = fig.panels[0].series_by_name("Murphy model")
        linear = self.r_squared(series.xs, series.ys, 1)
        quadratic = self.r_squared(series.xs, series.ys, 2)
        assert quadratic > 0.999
        assert quadratic > linear  # the second-degree term earns its keep


class TestCustomization:
    def test_lower_defect_density_flattens_murphy(self):
        strict = figure1(defect_density_per_cm2=0.09)
        relaxed = figure1(defect_density_per_cm2=0.01)
        strict_end = strict.panels[0].series_by_name("Murphy model").points[-1].y
        relaxed_end = relaxed.panels[0].series_by_name("Murphy model").points[-1].y
        assert relaxed_end < strict_end
