"""Reproduction tests for Figure 2 (scenario illustration)."""

from __future__ import annotations

import pytest

from repro.core.design import DesignPoint
from repro.studies.figure2 import DEFAULT_X, DEFAULT_Y, figure2, profile_energy


@pytest.fixture(scope="module")
def fig():
    return figure2()


class TestStructure:
    def test_two_panels(self, fig):
        assert [p.name for p in fig.panels] == ["(a) fixed-work", "(b) fixed-time"]

    def test_step_profiles_have_paired_points(self, fig):
        for panel in fig.panels:
            for series in panel.series:
                assert len(series.points) % 2 == 0

    def test_profiles_start_at_zero_time(self, fig):
        for panel in fig.panels:
            for series in panel.series:
                assert series.points[0].x == 0.0

    def test_window_is_slow_design_runtime(self, fig):
        for panel in fig.panels:
            for series in panel.series:
                assert series.points[-1].x == pytest.approx(1.0)


class TestFixedWorkPanel:
    def test_energy_is_the_proxy(self, fig):
        """Panel (a)'s areas equal the designs' energy per unit work
        (plus the idle tail for the fast design)."""
        panel = fig.panel("(a) fixed-work")
        x_area = profile_energy(panel.series_by_name(DEFAULT_X.name))
        assert x_area == pytest.approx(DEFAULT_X.energy)
        y_area = profile_energy(panel.series_by_name(DEFAULT_Y.name))
        idle_tail = (1.0 - 1.0 / DEFAULT_Y.perf) * 0.1
        assert y_area == pytest.approx(DEFAULT_Y.energy + idle_tail)

    def test_fast_design_idles(self, fig):
        panel = fig.panel("(a) fixed-work")
        y_series = panel.series_by_name(DEFAULT_Y.name)
        assert y_series.points[-1].y == pytest.approx(0.1)  # idle power


class TestFixedTimePanel:
    def test_power_is_the_proxy(self, fig):
        """Panel (b)'s areas over the unit window equal the powers."""
        panel = fig.panel("(b) fixed-time")
        assert profile_energy(panel.series_by_name(DEFAULT_X.name)) == (
            pytest.approx(DEFAULT_X.power)
        )
        extra = panel.series_by_name(f"{DEFAULT_Y.name} (+extra work)")
        assert profile_energy(extra) == pytest.approx(DEFAULT_Y.power)

    def test_no_idle_under_fixed_time(self, fig):
        panel = fig.panel("(b) fixed-time")
        for series in panel.series:
            assert all(p.y > 0.5 for p in series.points)  # never at idle power


class TestCustomDesigns:
    def test_equal_speeds_no_idle_segment(self):
        x = DesignPoint("X", area=1.0, perf=1.0, power=1.0)
        y = DesignPoint("Y", area=1.0, perf=1.0, power=2.0)
        fig = figure2(x, y)
        panel = fig.panel("(a) fixed-work")
        for series in panel.series:
            assert len(series.points) == 2  # one segment each

    def test_zero_idle_power(self):
        fig = figure2(idle_power=0.0)
        panel = fig.panel("(a) fixed-work")
        y_area = profile_energy(panel.series_by_name(DEFAULT_Y.name))
        assert y_area == pytest.approx(DEFAULT_Y.energy)
