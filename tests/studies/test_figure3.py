"""Reproduction tests for Figure 3 (symmetric multicore)."""

from __future__ import annotations

import pytest

from repro.studies.figure3 import PAPER_BCE_LADDER, PAPER_PARALLEL_FRACTIONS, figure3


@pytest.fixture(scope="module")
def fig():
    return figure3()


class TestStructure:
    def test_four_panels(self, fig):
        assert len(fig.panels) == 4
        titles = [p.name for p in fig.panels]
        assert any("(a)" in t for t in titles)
        assert any("(d)" in t for t in titles)

    def test_series_per_panel(self, fig):
        """One single-core curve plus one curve per f."""
        for panel in fig.panels:
            assert len(panel.series) == 1 + len(PAPER_PARALLEL_FRACTIONS)
            assert panel.series[0].name == "single-core"

    def test_points_per_series(self, fig):
        for panel in fig.panels:
            for series in panel.series:
                assert len(series) == len(PAPER_BCE_LADDER)

    def test_all_series_start_at_unit_point(self, fig):
        """Every curve includes the 1-BCE point at (1, 1)."""
        for panel in fig.panels:
            for series in panel.series:
                first = series.points[0]
                assert first.x == pytest.approx(1.0)
                assert first.y == pytest.approx(1.0)


class TestPanelValues:
    def test_panel_b_32bce_f095(self, fig):
        """Hand-computed: NCF_ft,0.8 of the 32-BCE f=0.95 multicore vs
        the 1-BCE single core = 0.8*32 + 0.2*16.439 = 28.89."""
        panel = fig.panel("(b) embodied dominated, fixed-time")
        point = panel.series_by_name("f=0.95").points[-1]
        assert point.label == "32 BCEs"
        assert point.y == pytest.approx(0.8 * 32 + 0.2 * 16.439, abs=0.01)

    def test_panel_c_energy_proxy(self, fig):
        """NCF_fw,0.2 of 32-BCE f=0.5: 0.2*32 + 0.8*4.1 = 9.68."""
        panel = fig.panel("(c) operational dominated, fixed-work")
        point = panel.series_by_name("f=0.5").points[-1]
        assert point.y == pytest.approx(9.68, abs=0.01)

    def test_single_core_curve_pollack(self, fig):
        """Single-core at 32 BCEs: perf sqrt(32) = 5.66."""
        panel = fig.panel("(d) operational dominated, fixed-time")
        point = panel.series_by_name("single-core").points[-1]
        assert point.x == pytest.approx(32**0.5)
        assert point.y == pytest.approx(0.2 * 32 + 0.8 * 32, abs=0.01)


class TestPaperShape:
    def test_finding1_multicore_below_single_core_at_same_area(self, fig):
        """In every panel the f=0.95 multicore at 32 BCEs sits below
        the 32-BCE single-core point (Finding #1)."""
        for panel in fig.panels:
            mc = panel.series_by_name("f=0.95").points[-1]
            sc = panel.series_by_name("single-core").points[-1]
            assert mc.y < sc.y
            assert mc.x > sc.x  # and it is faster

    def test_finding2_parallelism_reduces_fixed_work_footprint(self, fig):
        """At fixed N = 32, higher f gives lower NCF under fixed-work."""
        panel = fig.panel("(c) operational dominated, fixed-work")
        last_points = [
            panel.series_by_name(f"f={f:g}").points[-1].y
            for f in PAPER_PARALLEL_FRACTIONS
        ]
        assert last_points == sorted(last_points, reverse=True)

    def test_finding2_parallelism_raises_fixed_time_footprint(self, fig):
        panel = fig.panel("(d) operational dominated, fixed-time")
        last_points = [
            panel.series_by_name(f"f={f:g}").points[-1].y
            for f in PAPER_PARALLEL_FRACTIONS
        ]
        assert last_points == sorted(last_points)

    def test_y_axis_scale_matches_paper(self, fig):
        """Panels (a)/(b)/(d) top out ~30-35, panel (c) ~14."""
        max_c = max(
            p.y
            for s in fig.panel("(c) operational dominated, fixed-work").series
            for p in s.points
        )
        max_a = max(
            p.y
            for s in fig.panel("(a) embodied dominated, fixed-work").series
            for p in s.points
        )
        assert max_c < 14.0
        assert 25.0 < max_a < 35.0
