"""Reproduction tests for Figure 4 (asymmetric multicore)."""

from __future__ import annotations

import pytest

from repro.studies.figure4 import (
    PAPER_ASYM_BCES,
    PAPER_ASYM_FRACTIONS,
    figure4,
)


@pytest.fixture(scope="module")
def fig():
    return figure4()


class TestStructure:
    def test_four_panels(self, fig):
        assert len(fig.panels) == 4

    def test_series_names(self, fig):
        names = {s.name for s in fig.panels[0].series}
        expected = {
            f"{kind} {f:g}" for kind in ("sym", "asym") for f in PAPER_ASYM_FRACTIONS
        }
        assert names == expected

    def test_points_per_series(self, fig):
        for panel in fig.panels:
            for series in panel.series:
                assert len(series) == len(PAPER_ASYM_BCES)
                assert [p.label for p in series.points] == [
                    "8 BCEs",
                    "16 BCEs",
                    "32 BCEs",
                ]


class TestValues:
    def test_asym_speedup_at_16bce_f08(self, fig):
        """Hand-checked S = 6.0 for the 16-BCE asymmetric at f=0.8."""
        panel = fig.panels[0]
        point = panel.series_by_name("asym 0.8").points[1]
        assert point.x == pytest.approx(6.0)

    def test_panel_d_asym_32_f08(self, fig):
        """NCF_ft,0.2 = 0.2*32 + 0.8*13.866 = 17.49 (hand-checked)."""
        panel = fig.panel("(d) operational dominated, fixed-time")
        point = panel.series_by_name("asym 0.8").points[-1]
        assert point.y == pytest.approx(17.49, abs=0.02)

    def test_panel_c_sym_equals_figure3(self, fig):
        """The sym series here must match Figure 3's model exactly."""
        from repro.amdahl.symmetric import SymmetricMulticore

        panel = fig.panel("(c) operational dominated, fixed-work")
        point = panel.series_by_name("sym 0.95").points[-1]
        mc = SymmetricMulticore(32, 0.95)
        assert point.x == pytest.approx(mc.speedup)
        assert point.y == pytest.approx(0.2 * 32 + 0.8 * mc.energy)


class TestPaperShape:
    def test_finding4_asym_wins_fixed_work_loses_fixed_time(self, fig):
        """At equal N=32, f=0.8: asym below sym under fixed-work
        (operational-dominated), above under fixed-time."""
        fw = fig.panel("(c) operational dominated, fixed-work")
        ft = fig.panel("(d) operational dominated, fixed-time")
        assert (
            fw.series_by_name("asym 0.8").points[-1].y
            < fw.series_by_name("sym 0.8").points[-1].y
        )
        assert (
            ft.series_by_name("asym 0.8").points[-1].y
            > ft.series_by_name("sym 0.8").points[-1].y
        )

    def test_finding5_asym_faster_at_modest_parallelism(self, fig):
        """asym 16 BCEs f=0.8 outperforms sym 32 BCEs f=0.8 by ~35 %."""
        panel = fig.panels[0]
        asym16 = panel.series_by_name("asym 0.8").points[1]
        sym32 = panel.series_by_name("sym 0.8").points[-1]
        assert asym16.x / sym32.x == pytest.approx(1.35, abs=0.01)

    def test_finding5_asym_slower_at_high_parallelism(self, fig):
        panel = fig.panels[0]
        asym16 = panel.series_by_name("asym 0.95").points[1]
        sym32 = panel.series_by_name("sym 0.95").points[-1]
        assert 1 - asym16.x / sym32.x == pytest.approx(0.235, abs=0.005)

    def test_x_axis_reaches_paper_range(self, fig):
        """Figure 4's x-axis extends to ~20 (asym 32 at f=0.95)."""
        max_x = max(p.x for s in fig.panels[0].series for p in s.points)
        assert 15.0 < max_x < 20.0
