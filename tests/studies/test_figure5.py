"""Reproduction tests for Figure 5 (acceleration and dark silicon)."""

from __future__ import annotations

import pytest

from repro.studies.figure5 import figure5


@pytest.fixture(scope="module")
def fig():
    return figure5()


class TestStructure:
    def test_two_panels(self, fig):
        names = [p.name for p in fig.panels]
        assert names == ["(a) 6.5% extra chip area", "(b) 200% extra chip area"]

    def test_two_series_per_panel(self, fig):
        for panel in fig.panels:
            assert {s.name for s in panel.series} == {
                "embodied-dominated",
                "operational-dominated",
            }

    def test_x_spans_unit_interval(self, fig):
        xs = fig.panels[0].series[0].xs
        assert xs[0] == 0.0
        assert xs[-1] == 1.0


class TestPanelA:
    def test_start_values(self, fig):
        """At t=0 the accelerator only costs area: NCF = alpha*1.065 +
        (1-alpha)."""
        panel = fig.panel("(a) 6.5% extra chip area")
        emb = panel.series_by_name("embodied-dominated").points[0].y
        op = panel.series_by_name("operational-dominated").points[0].y
        assert emb == pytest.approx(0.8 * 1.065 + 0.2)
        assert op == pytest.approx(0.2 * 1.065 + 0.8)

    def test_curves_decrease(self, fig):
        for series in fig.panel("(a) 6.5% extra chip area").series:
            ys = list(series.ys)
            assert ys == sorted(ys, reverse=True)

    def test_finding6_embodied_crossover_before_one_third(self, fig):
        """The embodied curve crosses 1 between t=0.25 and t=0.30."""
        series = fig.panel("(a) 6.5% extra chip area").series_by_name(
            "embodied-dominated"
        )
        by_t = {p.x: p.y for p in series.points}
        assert by_t[0.25] > 1.0
        assert by_t[0.3] < 1.0

    def test_finding6_operational_t05_value(self, fig):
        series = fig.panel("(a) 6.5% extra chip area").series_by_name(
            "operational-dominated"
        )
        at_half = {p.x: p.y for p in series.points}[0.5]
        assert at_half == pytest.approx(0.614, abs=0.002)


class TestPanelB:
    def test_finding7_embodied_start_near_2_6(self, fig):
        series = fig.panel("(b) 200% extra chip area").series_by_name(
            "embodied-dominated"
        )
        assert series.points[0].y == pytest.approx(2.6)

    def test_finding7_embodied_never_below_one(self, fig):
        series = fig.panel("(b) 200% extra chip area").series_by_name(
            "embodied-dominated"
        )
        assert min(series.ys) > 1.0

    def test_finding7_operational_crossover_at_half(self, fig):
        series = fig.panel("(b) 200% extra chip area").series_by_name(
            "operational-dominated"
        )
        by_t = {p.x: p.y for p in series.points}
        assert by_t[0.5] > 1.0  # exact boundary is 0.501
        assert by_t[0.55] < 1.0

    def test_paper_y_axis_scale(self, fig):
        """Panel (b) y-axis tops out at ~3 (the paper shows 0-3)."""
        max_y = max(p.y for s in fig.panel("(b) 200% extra chip area").series for p in s.points)
        assert 2.5 < max_y < 3.0
