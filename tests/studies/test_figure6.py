"""Reproduction tests for Figure 6 (LLC study)."""

from __future__ import annotations

import pytest

from repro.studies.figure6 import figure6


@pytest.fixture(scope="module")
def fig():
    return figure6()


class TestStructure:
    def test_two_panels_two_series(self, fig):
        assert [p.name for p in fig.panels] == [
            "(a) embodied dominated",
            "(b) operational dominated",
        ]
        for panel in fig.panels:
            assert {s.name for s in panel.series} == {"fixed-work", "fixed-time"}

    def test_size_labels(self, fig):
        labels = [p.label for p in fig.panels[0].series[0].points]
        assert labels == ["1MB", "2MB", "4MB", "8MB", "16MB"]

    def test_performance_axis_matches_paper(self, fig):
        """Perf runs from 1 to 2.5 (the paper's x-axis)."""
        xs = fig.panels[0].series[0].xs
        assert xs[0] == pytest.approx(1.0)
        assert xs[-1] == pytest.approx(2.5)


class TestShape:
    def test_baseline_point_at_unity(self, fig):
        for panel in fig.panels:
            for series in panel.series:
                assert series.points[0].y == pytest.approx(1.0)

    def test_ncf_increases_with_size_embodied(self, fig):
        for series in fig.panel("(a) embodied dominated").series:
            ys = list(series.ys)
            assert ys == sorted(ys)

    def test_embodied_16mb_scale(self, fig):
        """Figure 6(a) tops out around 4-6 at 16 MB."""
        for series in fig.panel("(a) embodied dominated").series:
            assert 3.5 < series.points[-1].y < 6.0

    def test_operational_fixed_work_dips_below_one_at_2mb(self, fig):
        """Finding #8: marginal weak sustainability for small caches."""
        series = fig.panel("(b) operational dominated").series_by_name("fixed-work")
        two_mb = series.points[1]
        assert two_mb.y < 1.0

    def test_operational_fixed_time_never_below_one(self, fig):
        series = fig.panel("(b) operational dominated").series_by_name("fixed-time")
        assert all(p.y >= 1.0 - 1e-9 for p in series.points)

    def test_fixed_time_above_fixed_work(self, fig):
        """Larger caches improve perf, so power falls less than energy:
        the fixed-time curve sits above fixed-work everywhere."""
        for panel in fig.panels:
            fw = panel.series_by_name("fixed-work")
            ft = panel.series_by_name("fixed-time")
            for fw_pt, ft_pt in zip(fw.points[1:], ft.points[1:]):
                assert ft_pt.y > fw_pt.y
