"""Reproduction tests for Figure 7 (core microarchitectures)."""

from __future__ import annotations

import pytest

from repro.studies.figure7 import figure7


@pytest.fixture(scope="module")
def fig():
    return figure7()


def chart(fig, panel_key: str) -> dict[str, tuple[float, float]]:
    panel = next(p for p in fig.panels if panel_key in p.name)
    return {pt.label: (pt.x, pt.y) for pt in panel.series[0].points}


class TestStructure:
    def test_four_panels_three_cores(self, fig):
        assert len(fig.panels) == 4
        for panel in fig.panels:
            labels = [p.label for p in panel.series[0].points]
            assert labels == ["InO", "FSC", "OoO"]

    def test_ino_anchor(self, fig):
        for key in ("(a)", "(b)", "(c)", "(d)"):
            x, y = chart(fig, key)["InO"]
            assert x == pytest.approx(1.0)
            assert y == pytest.approx(1.0)


class TestPanelValues:
    def test_panel_a(self, fig):
        values = chart(fig, "(a)")
        assert values["FSC"][1] == pytest.approx(0.9312, abs=0.001)
        assert values["OoO"][1] == pytest.approx(1.3771, abs=0.001)

    def test_panel_d(self, fig):
        values = chart(fig, "(d)")
        assert values["FSC"][1] == pytest.approx(1.01, abs=0.001)
        assert values["OoO"][1] == pytest.approx(2.134, abs=0.001)

    def test_x_positions(self, fig):
        values = chart(fig, "(b)")
        assert values["FSC"][0] == pytest.approx(1.64)
        assert values["OoO"][0] == pytest.approx(1.75)


class TestPaperShape:
    def test_finding9_ooo_above_one_everywhere(self, fig):
        for key in ("(a)", "(b)", "(c)", "(d)"):
            assert chart(fig, key)["OoO"][1] > 1.0

    def test_finding10_fsc_below_one_fixed_work(self, fig):
        for key in ("(a)", "(c)"):
            assert chart(fig, key)["FSC"][1] < 1.0

    def test_finding10_fsc_barely_above_one_fixed_time(self, fig):
        for key in ("(b)", "(d)"):
            value = chart(fig, key)["FSC"][1]
            assert 1.0 < value < 1.02

    def test_finding11_fsc_below_ooo_everywhere(self, fig):
        for key in ("(a)", "(b)", "(c)", "(d)"):
            values = chart(fig, key)
            assert values["FSC"][1] < values["OoO"][1]

    def test_paper_y_range(self, fig):
        """Fixed-time panels reach ~2.1-2.4 (OoO); fixed-work ~1.4-1.6."""
        assert 2.0 < chart(fig, "(d)")["OoO"][1] < 2.4
        assert 1.3 < chart(fig, "(a)")["OoO"][1] < 1.6
