"""Reproduction tests for Figure 8 (branch prediction)."""

from __future__ import annotations

import pytest

from repro.studies.figure8 import figure8


@pytest.fixture(scope="module")
def fig():
    return figure8()


class TestStructure:
    def test_two_panels(self, fig):
        assert [p.name for p in fig.panels] == [
            "(a) embodied dominated",
            "(b) operational dominated",
        ]

    def test_series_and_sweep(self, fig):
        for panel in fig.panels:
            assert {s.name for s in panel.series} == {"fixed-work", "fixed-time"}
            xs = panel.series[0].xs
            assert xs[0] == 0.0
            assert xs[-1] == pytest.approx(0.08)


class TestValues:
    def test_zero_area_values(self, fig):
        """At 0 % area: NCF_fw = alpha + (1-alpha)*0.93."""
        panel = fig.panel("(a) embodied dominated")
        fw0 = panel.series_by_name("fixed-work").points[0].y
        assert fw0 == pytest.approx(0.8 + 0.2 * 0.93)

    def test_y_range_matches_paper(self, fig):
        """Figure 8's y-axis spans 0.90-1.10; all values fit."""
        for panel in fig.panels:
            for series in panel.series:
                for point in series.points:
                    assert 0.90 <= point.y <= 1.10


class TestFinding12:
    def test_embodied_fixed_work_crosses_near_2pct(self, fig):
        series = fig.panel("(a) embodied dominated").series_by_name("fixed-work")
        by_x = {round(p.x, 4): p.y for p in series.points}
        assert by_x[0.015] < 1.0
        assert by_x[0.02] > 1.0

    def test_operational_fixed_work_sustainable_throughout(self, fig):
        series = fig.panel("(b) operational dominated").series_by_name("fixed-work")
        assert all(p.y < 1.0 for p in series.points)

    def test_fixed_time_unsustainable_throughout(self, fig):
        for panel in fig.panels:
            series = panel.series_by_name("fixed-time")
            assert all(p.y > 1.0 for p in series.points)

    def test_curves_increase_with_area(self, fig):
        for panel in fig.panels:
            for series in panel.series:
                ys = list(series.ys)
                assert ys == sorted(ys)
