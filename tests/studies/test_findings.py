"""The headline reproduction test: every Finding check must pass."""

from __future__ import annotations

import pytest

from repro.studies.findings import FindingCheck, all_findings, failed_findings


@pytest.fixture(scope="module")
def checks():
    return all_findings()


class TestCoverage:
    def test_substantial_check_count(self, checks):
        assert len(checks) >= 55

    def test_every_finding_represented(self, checks):
        ids = {c.finding for c in checks}
        expected = {f"F{i}" for i in range(1, 18)} | {"CS"}
        assert ids == expected

    def test_paper_order(self, checks):
        """Checks come back grouped by finding, F1 first, CS last."""
        ids = [c.finding for c in checks]
        assert ids[0] == "F1"
        assert ids[-1] == "CS"


def _check_id(check: FindingCheck) -> str:
    return f"{check.finding}: {check.claim[:60]}"


@pytest.mark.parametrize("check", all_findings(), ids=_check_id)
def test_finding_reproduces(check: FindingCheck):
    assert check.passed, (
        f"{check.finding} failed: {check.claim}\n"
        f"  paper:    {check.paper_value}\n"
        f"  computed: {check.computed}\n"
        f"  tol:      {check.tolerance}\n"
        f"  note:     {check.note or '-'}"
    )


class TestAggregate:
    def test_no_failures(self):
        assert failed_findings() == []


class TestCheckMechanics:
    def test_relative_tolerance(self):
        check = FindingCheck("T", "c", 1.0, 1.015, tolerance=0.02)
        assert check.passed
        assert not FindingCheck("T", "c", 1.0, 1.03, tolerance=0.02).passed

    def test_string_comparison_exact(self):
        assert FindingCheck("T", "c", "strong", "strong").passed
        assert not FindingCheck("T", "c", "strong", "weak").passed

    def test_zero_paper_value_uses_absolute(self):
        assert FindingCheck("T", "c", 0.0, 0.01, tolerance=0.02).passed
        assert not FindingCheck("T", "c", 0.0, 0.03, tolerance=0.02).passed

    def test_as_dict_round_trip(self):
        payload = FindingCheck("T", "c", 1.0, 1.0).as_dict()
        assert payload["passed"] is True
        assert payload["finding"] == "T"
