"""Golden-file regression tests for every figure.

The goldens under ``tests/studies/goldens/`` pin the exact series each
figure driver produced when the reproduction was verified against the
paper. Any model change that silently moves a figure fails here with a
pointer to the first diverging point.

To regenerate after an *intentional* model change::

    python - <<'PY'
    from pathlib import Path
    from repro.report.export import figure_to_json
    from repro.studies.registry import run_study, study_names
    out = Path("tests/studies/goldens")
    for name in study_names():
        (out / f"{name}.json").write_text(figure_to_json(run_study(name)))
    PY
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.report.export import figure_to_json
from repro.studies.registry import run_study, study_names

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Floats must match the golden to this relative tolerance.
REL_TOL = 1e-9


def _point_sets(payload: dict) -> list[tuple[str, str, list[dict]]]:
    return [
        (panel["name"], series["name"], series["points"])
        for panel in payload["panels"]
        for series in panel["series"]
    ]


@pytest.mark.parametrize("name", study_names())
def test_figure_matches_golden(name: str):
    golden_path = GOLDEN_DIR / f"{name}.json"
    assert golden_path.exists(), f"missing golden for {name}; see module docstring"
    golden = json.loads(golden_path.read_text())
    current = json.loads(figure_to_json(run_study(name)))

    golden_sets = _point_sets(golden)
    current_sets = _point_sets(current)
    assert [(p, s) for p, s, _ in current_sets] == [
        (p, s) for p, s, _ in golden_sets
    ], f"{name}: panel/series structure changed"

    for (panel, series, golden_points), (_, _, current_points) in zip(
        golden_sets, current_sets
    ):
        assert len(golden_points) == len(current_points), (
            f"{name}/{panel}/{series}: point count changed"
        )
        for index, (g, c) in enumerate(zip(golden_points, current_points)):
            for axis in ("x", "y"):
                assert math.isclose(g[axis], c[axis], rel_tol=REL_TOL), (
                    f"{name}/{panel}/{series}[{index}].{axis}: "
                    f"golden {g[axis]!r} != current {c[axis]!r}"
                )
            assert g["label"] == c["label"], (
                f"{name}/{panel}/{series}[{index}]: label changed"
            )


def test_no_stale_goldens():
    """Every golden corresponds to a registered study."""
    on_disk = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert on_disk == set(study_names())
