"""Tests for the mechanism categorization table."""

from __future__ import annotations

import pytest

from repro.core.classify import Sustainability
from repro.core.scenario import EMBODIED_DOMINATED, OPERATIONAL_DOMINATED
from repro.studies.mechanisms import (
    PAPER_CATEGORIES,
    MechanismEntry,
    mechanism_catalogue,
)


@pytest.fixture(scope="module")
def catalogue():
    return mechanism_catalogue()


class TestStructure:
    def test_every_mechanism_twice(self, catalogue):
        assert len(catalogue) == 2 * len(PAPER_CATEGORIES)
        mechanisms = {entry.mechanism for entry in catalogue}
        assert mechanisms == set(PAPER_CATEGORIES)

    def test_both_regimes_present(self, catalogue):
        regimes = {entry.regime for entry in catalogue}
        assert regimes == {EMBODIED_DOMINATED.name, OPERATIONAL_DOMINATED.name}

    def test_sections_cover_the_paper(self, catalogue):
        sections = {entry.section for entry in catalogue}
        assert {"5.1", "5.2", "5.3", "5.4", "5.5", "5.6", "5.7", "5.8", "5.9", "6"} == (
            sections
        )


@pytest.mark.parametrize(
    "entry",
    mechanism_catalogue(),
    ids=lambda e: f"{e.mechanism} [{e.regime}]",
)
def test_category_matches_paper(entry: MechanismEntry):
    assert entry.matches_paper, (
        f"{entry.mechanism} under {entry.regime}: computed "
        f"{entry.verdict.category.value}, paper says {entry.paper_category.value} "
        f"(NCF fw={entry.verdict.ncf_fixed_work:.3f}, "
        f"ft={entry.verdict.ncf_fixed_time:.3f})"
    )


class TestRegimeDependence:
    def test_branch_prediction_flips_with_regime(self, catalogue):
        """The only catalogue mechanism whose *category* changes with
        the alpha regime at its representative configuration."""
        bp = [e for e in catalogue if e.mechanism.startswith("branch prediction")]
        categories = {e.regime: e.verdict.category for e in bp}
        assert categories[EMBODIED_DOMINATED.name] is Sustainability.LESS
        assert categories[OPERATIONAL_DOMINATED.name] is Sustainability.WEAK

    def test_strong_mechanisms_strong_in_both_regimes(self, catalogue):
        for name in ("multicore", "pipeline gating", "die shrink", "DVFS down-scaling"):
            entries = [e for e in catalogue if e.mechanism == name]
            assert all(
                e.verdict.category is Sustainability.STRONG for e in entries
            ), name

    def test_as_dict_round_trip(self, catalogue):
        payload = catalogue[0].as_dict()
        assert payload["match"] is True
        assert payload["mechanism"] == catalogue[0].mechanism
