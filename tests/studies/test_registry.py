"""Unit tests for the study registry."""

from __future__ import annotations

import pytest

from repro.core.errors import UnknownStudyError
from repro.report.series import FigureResult
from repro.studies.registry import STUDIES, run_study, study_names


class TestRegistry:
    def test_all_figures_registered(self):
        assert study_names() == [f"figure{i}" for i in range(1, 10)]

    def test_figure2_is_the_conceptual_illustration(self):
        """Figure 2 carries no evaluation data in the paper; our driver
        reproduces it as exact step profiles."""
        result = STUDIES["figure2"]()
        assert "step profiles" in " ".join(result.notes)

    def test_run_study_returns_figure_result(self):
        result = run_study("figure1")
        assert isinstance(result, FigureResult)
        assert result.figure_id == "figure1"

    def test_unknown_study_raises_with_suggestions(self):
        with pytest.raises(UnknownStudyError, match="figure3"):
            run_study("figure99")

    @pytest.mark.parametrize("name", study_names())
    def test_every_study_runs_and_ids_match(self, name):
        result = run_study(name)
        assert result.figure_id == name
        assert result.total_points > 0
        assert result.caption
