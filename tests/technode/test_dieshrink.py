"""Unit tests for the die-shrink analysis (paper §6, Finding #17)."""

from __future__ import annotations

import pytest

from repro.core.classify import Sustainability
from repro.core.design import DesignPoint
from repro.core.errors import ValidationError
from repro.core.scenario import UseScenario
from repro.technode.dieshrink import (
    classify_die_shrink,
    die_shrink,
    shrunk_design,
)
from repro.technode.scaling import CLASSICAL_SCALING, POST_DENNARD_SCALING


class TestDieShrinkOutcome:
    def test_paper_embodied_multiplier(self):
        """0.5 area x 1.252 wafer footprint = 0.626 ~ paper's 0.625."""
        outcome = die_shrink(POST_DENNARD_SCALING, 1)
        assert outcome.embodied == pytest.approx(0.626, rel=0.01)

    def test_post_dennard_power_unchanged(self):
        assert die_shrink(POST_DENNARD_SCALING, 1).power == 1.0

    def test_classical_power_halves(self):
        assert die_shrink(CLASSICAL_SCALING, 1).power == 0.5

    def test_energy_consistency(self):
        outcome = die_shrink(CLASSICAL_SCALING, 1)
        assert outcome.energy == pytest.approx(outcome.power / outcome.performance)

    def test_zero_transitions_is_identity(self):
        outcome = die_shrink(POST_DENNARD_SCALING, 0)
        assert outcome.embodied == 1.0
        assert outcome.performance == 1.0

    def test_negative_transitions_rejected(self):
        with pytest.raises(ValidationError):
            die_shrink(POST_DENNARD_SCALING, -1)

    def test_embodied_keeps_shrinking_across_transitions(self):
        values = [die_shrink(POST_DENNARD_SCALING, t).embodied for t in range(4)]
        assert values == sorted(values, reverse=True)


class TestNCF:
    def test_post_dennard_fixed_time_operational_neutral(self):
        outcome = die_shrink(POST_DENNARD_SCALING, 1)
        # alpha = 0: pure operational; power ratio is exactly 1.
        assert outcome.ncf(UseScenario.FIXED_TIME, 0.0) == pytest.approx(1.0)

    def test_fixed_work_always_below_one(self):
        for regime in (POST_DENNARD_SCALING, CLASSICAL_SCALING):
            outcome = die_shrink(regime, 1)
            for alpha in (0.1, 0.5, 0.9):
                assert outcome.ncf(UseScenario.FIXED_WORK, alpha) < 1.0


class TestClassification:
    @pytest.mark.parametrize("regime", [POST_DENNARD_SCALING, CLASSICAL_SCALING])
    @pytest.mark.parametrize("alpha", [0.2, 0.5, 0.8])
    def test_finding_17_strongly_sustainable(self, regime, alpha):
        assert classify_die_shrink(regime, alpha) is Sustainability.STRONG


class TestShrunkDesign:
    def test_design_point_fields(self):
        base = DesignPoint("chip", area=2.0, perf=3.0, power=4.0)
        shrunk = shrunk_design(base, POST_DENNARD_SCALING, 1)
        outcome = die_shrink(POST_DENNARD_SCALING, 1)
        assert shrunk.area == pytest.approx(2.0 * outcome.embodied)
        assert shrunk.perf == pytest.approx(3.0 * outcome.performance)
        assert shrunk.power == pytest.approx(4.0 * outcome.power)
        assert "shrink" in shrunk.name

    def test_shrunk_design_vs_original_ncf_matches_outcome(self):
        base = DesignPoint.baseline("chip")
        shrunk = shrunk_design(base, CLASSICAL_SCALING, 1)
        outcome = die_shrink(CLASSICAL_SCALING, 1)
        from repro.core.ncf import ncf

        assert ncf(shrunk, base, UseScenario.FIXED_WORK, 0.5) == pytest.approx(
            outcome.ncf(UseScenario.FIXED_WORK, 0.5)
        )
