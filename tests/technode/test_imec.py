"""Unit tests for the Imec manufacturing-footprint growth data."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.technode.imec import (
    IMEC_IEDM2020,
    SCOPE1_ANNUAL_GROWTH,
    SCOPE1_PER_NODE_GROWTH,
    SCOPE2_ANNUAL_GROWTH,
    SCOPE2_PER_NODE_GROWTH,
    ImecGrowthRates,
    annual_to_per_node,
    wafer_footprint_multiplier,
)


class TestPaperConstants:
    def test_scope2_annual_to_per_node(self):
        """1.119^2 ~= 1.252: the paper's two quoted numbers agree."""
        assert annual_to_per_node(SCOPE2_ANNUAL_GROWTH) == pytest.approx(
            SCOPE2_PER_NODE_GROWTH, rel=0.01
        )

    def test_scope1_annual_to_per_node(self):
        """1.093^2 ~= 1.195."""
        assert annual_to_per_node(SCOPE1_ANNUAL_GROWTH) == pytest.approx(
            SCOPE1_PER_NODE_GROWTH, rel=0.01
        )

    def test_default_blend_is_scope2(self):
        assert IMEC_IEDM2020.blended_per_node == SCOPE2_PER_NODE_GROWTH


class TestWaferFootprintMultiplier:
    def test_single_transition(self):
        assert IMEC_IEDM2020.wafer_footprint_multiplier(1) == pytest.approx(1.252)

    def test_zero_transitions_identity(self):
        assert IMEC_IEDM2020.wafer_footprint_multiplier(0) == 1.0

    def test_compounds(self):
        assert IMEC_IEDM2020.wafer_footprint_multiplier(3) == pytest.approx(1.252**3)

    def test_negative_transitions_rejected(self):
        with pytest.raises(ValidationError):
            IMEC_IEDM2020.wafer_footprint_multiplier(-1)

    def test_module_level_wrapper(self):
        assert wafer_footprint_multiplier(2) == pytest.approx(1.252**2)


class TestBlending:
    def test_scope1_only(self):
        rates = ImecGrowthRates(scope2_share=0.0)
        assert rates.blended_per_node == pytest.approx(SCOPE1_PER_NODE_GROWTH)

    def test_even_blend_between_rates(self):
        rates = ImecGrowthRates(scope2_share=0.5)
        assert rates.blended_per_node == pytest.approx(
            0.5 * (SCOPE1_PER_NODE_GROWTH + SCOPE2_PER_NODE_GROWTH)
        )

    def test_rejects_bad_share(self):
        with pytest.raises(ValidationError):
            ImecGrowthRates(scope2_share=1.5)

    def test_rejects_negative_growth(self):
        with pytest.raises(ValidationError):
            ImecGrowthRates(scope2_per_node=-0.1)


class TestAnnualConversion:
    def test_custom_cadence(self):
        """A 3-year cadence compounds three annual steps."""
        assert annual_to_per_node(0.1, years_per_node=3.0) == pytest.approx(
            1.1**3 - 1.0
        )

    def test_zero_growth(self):
        assert annual_to_per_node(0.0) == 0.0

    def test_rejects_negative_rate(self):
        with pytest.raises(ValidationError):
            annual_to_per_node(-0.05)
