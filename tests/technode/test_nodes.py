"""Unit tests for the technology-node roster."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.technode.nodes import (
    NODE_ROSTER,
    TechNode,
    node_by_name,
    transitions_between,
)


class TestRoster:
    def test_covers_imec_range(self):
        labels = [node.label for node in NODE_ROSTER]
        assert labels[0] == "28nm"
        assert labels[-1] == "3nm"
        assert len(labels) == 7

    def test_indices_sequential(self):
        assert [n.index for n in NODE_ROSTER] == list(range(7))

    def test_feature_sizes_decrease(self):
        features = [n.feature_nm for n in NODE_ROSTER]
        assert features == sorted(features, reverse=True)


class TestTechNode:
    def test_rejects_empty_label(self):
        with pytest.raises(ValidationError):
            TechNode("", 7.0, 0)

    def test_rejects_negative_feature(self):
        with pytest.raises(ValidationError):
            TechNode("x", -1.0, 0)

    def test_rejects_negative_index(self):
        with pytest.raises(ValidationError):
            TechNode("x", 7.0, -1)


class TestLookup:
    def test_by_name(self):
        assert node_by_name("7nm").feature_nm == 7.0

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValidationError, match="28nm"):
            node_by_name("6nm")


class TestTransitions:
    def test_adjacent(self):
        assert transitions_between(node_by_name("7nm"), node_by_name("5nm")) == 1

    def test_full_span(self):
        assert transitions_between(node_by_name("28nm"), node_by_name("3nm")) == 6

    def test_same_node_zero(self):
        node = node_by_name("5nm")
        assert transitions_between(node, node) == 0

    def test_backwards_rejected(self):
        with pytest.raises(ValidationError, match="older"):
            transitions_between(node_by_name("5nm"), node_by_name("7nm"))
