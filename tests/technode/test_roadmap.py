"""Unit tests for the multi-generation Moore's-Law roadmap."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.core.scenario import UseScenario
from repro.technode.roadmap import GenerationPoint, RoadmapPolicy, roadmap
from repro.technode.scaling import CLASSICAL_SCALING

FW = UseScenario.FIXED_WORK
FT = UseScenario.FIXED_TIME


class TestStructure:
    def test_generation_zero_is_identity(self):
        for policy in RoadmapPolicy:
            start = roadmap(policy, 3)[0]
            assert (start.embodied, start.perf, start.power) == (1.0, 1.0, 1.0)

    def test_length(self):
        assert len(roadmap(RoadmapPolicy.SHRINK, 6)) == 7

    def test_zero_generations(self):
        assert len(roadmap(RoadmapPolicy.SHRINK, 0)) == 1

    def test_rejects_negative_generations(self):
        with pytest.raises(ValidationError):
            roadmap(RoadmapPolicy.SHRINK, -1)


class TestShrinkPolicy:
    def test_cores_constant(self):
        assert all(p.cores == 4 for p in roadmap(RoadmapPolicy.SHRINK, 6))

    def test_first_generation_matches_die_shrink(self):
        """Generation 1 must equal the §6 single-shrink numbers."""
        point = roadmap(RoadmapPolicy.SHRINK, 1)[1]
        assert point.embodied == pytest.approx(0.626, abs=0.001)
        assert point.perf == pytest.approx(2**0.5, abs=0.001)
        assert point.power == 1.0  # post-Dennard default

    def test_embodied_keeps_falling(self):
        values = [p.embodied for p in roadmap(RoadmapPolicy.SHRINK, 6)]
        assert values == sorted(values, reverse=True)

    def test_ncf_improves_every_generation(self):
        points = roadmap(RoadmapPolicy.SHRINK, 6)
        for scenario in (FW, FT):
            values = [p.ncf(scenario, 0.5) for p in points]
            assert values == sorted(values, reverse=True)
            assert values[-1] < 1.0

    def test_classical_scaling_power_halves(self):
        point = roadmap(RoadmapPolicy.SHRINK, 1, regime=CLASSICAL_SCALING)[1]
        assert point.power == pytest.approx(0.5)


class TestConstantAreaPolicy:
    def test_cores_double(self):
        cores = [p.cores for p in roadmap(RoadmapPolicy.CONSTANT_AREA, 3)]
        assert cores == [4, 8, 16, 32]

    def test_embodied_grows_with_wafer_footprint(self):
        points = roadmap(RoadmapPolicy.CONSTANT_AREA, 3)
        assert points[1].embodied == pytest.approx(1.252)
        assert points[3].embodied == pytest.approx(1.252**3)

    def test_jevons_paradox_quantified(self):
        """The §6 discussion: spending the shrink on functionality makes
        every generation less sustainable, under both scenarios."""
        points = roadmap(RoadmapPolicy.CONSTANT_AREA, 6)
        for scenario in (FW, FT):
            assert points[-1].ncf(scenario, 0.5) > 1.0

    def test_constant_area_buys_more_performance(self):
        """The flip side: the unsustainable policy IS faster."""
        shrink = roadmap(RoadmapPolicy.SHRINK, 6)[-1]
        grow = roadmap(RoadmapPolicy.CONSTANT_AREA, 6)[-1]
        assert grow.perf > shrink.perf

    def test_fully_serial_software_wastes_the_cores(self):
        """With f = 0, the extra cores add leakage but no speedup: the
        constant-area policy loses on both axes."""
        points = roadmap(RoadmapPolicy.CONSTANT_AREA, 3, parallel_fraction=0.0)
        shrink = roadmap(RoadmapPolicy.SHRINK, 3, parallel_fraction=0.0)
        assert points[-1].perf < shrink[-1].perf * 1.0001
        assert points[-1].power > shrink[-1].power


class TestGenerationPoint:
    def test_energy_identity(self):
        point = GenerationPoint(
            generation=1, cores=8, area=1.0, embodied=1.25, perf=2.0, power=1.5
        )
        assert point.energy == pytest.approx(0.75)

    def test_ncf_uses_right_proxy(self):
        point = GenerationPoint(
            generation=1, cores=8, area=1.0, embodied=1.0, perf=2.0, power=1.0
        )
        assert point.ncf(FW, 0.0) == pytest.approx(0.5)  # energy
        assert point.ncf(FT, 0.0) == pytest.approx(1.0)  # power
