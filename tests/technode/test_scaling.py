"""Unit tests for classical vs post-Dennard scaling regimes."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ValidationError
from repro.technode.scaling import (
    CLASSICAL_SCALING,
    POST_DENNARD_SCALING,
    ScalingRegime,
)


class TestClassicalScaling:
    def test_paper_multipliers(self):
        assert CLASSICAL_SCALING.area_factor == 0.5
        assert CLASSICAL_SCALING.power_factor == 0.5
        assert CLASSICAL_SCALING.frequency_factor == pytest.approx(math.sqrt(2))

    def test_energy_drops_2_82x(self):
        """Paper §6: classical scaling cuts energy by 2.82x."""
        assert 1.0 / CLASSICAL_SCALING.energy_factor == pytest.approx(2.82, rel=0.01)


class TestPostDennardScaling:
    def test_paper_multipliers(self):
        assert POST_DENNARD_SCALING.area_factor == 0.5
        assert POST_DENNARD_SCALING.power_factor == 1.0
        assert POST_DENNARD_SCALING.frequency_factor == pytest.approx(math.sqrt(2))

    def test_energy_drops_1_41x(self):
        """Paper §6: post-Dennard cuts energy by 1.41x."""
        assert 1.0 / POST_DENNARD_SCALING.energy_factor == pytest.approx(1.41, rel=0.01)

    def test_performance_tracks_frequency(self):
        assert POST_DENNARD_SCALING.performance_factor == (
            POST_DENNARD_SCALING.frequency_factor
        )


class TestCompounding:
    def test_two_transitions_quarter_area(self):
        scaled = POST_DENNARD_SCALING.after(2)
        assert scaled.area_factor == pytest.approx(0.25)
        assert scaled.frequency_factor == pytest.approx(2.0)

    def test_zero_transitions_identity(self):
        scaled = CLASSICAL_SCALING.after(0)
        assert scaled.area_factor == 1.0
        assert scaled.power_factor == 1.0
        assert scaled.frequency_factor == 1.0

    def test_negative_transitions_rejected(self):
        with pytest.raises(ValidationError):
            CLASSICAL_SCALING.after(-1)

    def test_energy_factor_compounds_consistently(self):
        scaled = CLASSICAL_SCALING.after(3)
        assert scaled.energy_factor == pytest.approx(
            CLASSICAL_SCALING.energy_factor**3
        )


class TestValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            ScalingRegime("", 1.0, 1.0, 1.0)

    @pytest.mark.parametrize("field", ["area_factor", "power_factor", "frequency_factor"])
    def test_rejects_non_positive_factor(self, field):
        kwargs = {"area_factor": 1.0, "power_factor": 1.0, "frequency_factor": 1.0}
        kwargs[field] = 0.0
        with pytest.raises(ValidationError):
            ScalingRegime("x", **kwargs)
