"""The benchmark-history ledger and its regression gate."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_history",
    Path(__file__).resolve().parent.parent / "tools" / "bench_history.py",
)
bench_history = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_history)


def _node(**overrides) -> dict:
    node = {
        "platform": "Linux-test",
        "machine": "x86_64",
        "python": "3.12.0",
        "numpy": "2.0.0",
        "cpu_count": 4,
    }
    node.update(overrides)
    return node


def _record(bench="dse_engine", node=None, **results) -> dict:
    return {"bench": bench, "node": node or _node(), "results": results}


class TestHelpers:
    def test_signature_uses_all_platform_keys(self):
        base = bench_history.node_signature(_node())
        assert len(base) == len(bench_history.SIGNATURE_KEYS)
        assert bench_history.node_signature(_node(python="3.13.0")) != base
        assert bench_history.node_signature(_node(cpu_count=64)) != base
        assert bench_history.node_signature(_node()) == base

    def test_speedup_keys_filters_numerics(self):
        keys = bench_history.speedup_keys(
            {
                "warm_speedup": 3.0,
                "parallel_speedup": 1.24,
                "warm_speedup_note": "text",
                "rounds": 5,
                "broken_speedup": "n/a",
            }
        )
        assert keys == {"warm_speedup": 3.0, "parallel_speedup": 1.24}

    def test_speedup_keys_excludes_unenforced_gates(self):
        keys = bench_history.speedup_keys(
            {
                "parallel_speedup": 0.39,
                "parallel_gate_enforced": False,
                "store_warm_speedup": 24.0,
                "store_warm_gate_enforced": True,
                "warm_speedup": 3.0,
            }
        )
        assert keys == {"store_warm_speedup": 24.0, "warm_speedup": 3.0}

    def test_load_history_skips_torn_trailing_line(self, tmp_path):
        ledger = tmp_path / "history.jsonl"
        ledger.write_text(
            json.dumps(_record(warm_speedup=2.0))
            + "\n"
            + '{"bench": "dse_engine", "trunc'
        )
        records = bench_history.load_history(ledger)
        assert len(records) == 1
        assert records[0]["results"]["warm_speedup"] == 2.0

    def test_load_history_missing_file_is_empty(self, tmp_path):
        assert bench_history.load_history(tmp_path / "absent.jsonl") == []


class TestFindRegressions:
    def test_drop_beyond_threshold_is_flagged(self):
        history = [_record(warm_speedup=10.0)]
        runs = [_record(warm_speedup=7.0)]
        lines = bench_history.find_regressions(runs, history, 0.20)
        assert len(lines) == 1
        assert "warm_speedup" in lines[0]
        assert "10.000x" in lines[0]

    def test_drop_within_threshold_passes(self):
        history = [_record(warm_speedup=10.0)]
        runs = [_record(warm_speedup=8.5)]
        assert bench_history.find_regressions(runs, history, 0.20) == []

    def test_best_recorded_value_is_the_reference(self):
        history = [
            _record(warm_speedup=2.0),
            _record(warm_speedup=10.0),
            _record(warm_speedup=4.0),
        ]
        runs = [_record(warm_speedup=7.0)]
        assert bench_history.find_regressions(runs, history, 0.20)

    def test_other_platforms_never_gate(self):
        history = [_record(node=_node(cpu_count=128), warm_speedup=50.0)]
        runs = [_record(warm_speedup=1.1)]
        assert bench_history.find_regressions(runs, history, 0.20) == []

    def test_other_benchmarks_never_gate(self):
        history = [_record(bench="obs_overhead", warm_speedup=50.0)]
        runs = [_record(bench="dse_engine", warm_speedup=1.1)]
        assert bench_history.find_regressions(runs, history, 0.20) == []

    def test_advisory_points_neither_seed_nor_gate(self):
        """A ``*_gate_enforced: false`` figure (e.g. the pool speedup on
        a 1-CPU host) is measured-but-not-promised: it must not become
        the baseline other runs regress against, and a later advisory
        run must not be gated either."""
        history = [_record(parallel_speedup=5.0, parallel_gate_enforced=False)]
        advisory_run = [
            _record(parallel_speedup=0.4, parallel_gate_enforced=False)
        ]
        assert (
            bench_history.find_regressions(advisory_run, history, 0.20) == []
        )
        enforced_run = [
            _record(parallel_speedup=0.4, parallel_gate_enforced=True)
        ]
        assert (
            bench_history.find_regressions(enforced_run, history, 0.20) == []
        )

    def test_fresh_platform_only_seeds(self):
        assert (
            bench_history.find_regressions(
                [_record(warm_speedup=1.0)], [], 0.20
            )
            == []
        )


class TestMain:
    def _write_bench(self, root: Path, **results):
        (root / "BENCH_dse_engine.json").write_text(json.dumps(results))

    def test_first_run_seeds_history_and_passes(self, tmp_path, capsys):
        self._write_bench(tmp_path, warm_speedup=3.0)
        ledger = tmp_path / "out" / "history.jsonl"
        code = bench_history.main(
            ["--root", str(tmp_path), "--history", str(ledger)]
        )
        assert code == 0
        assert "appended 1 runs" in capsys.readouterr().out
        (record,) = bench_history.load_history(ledger)
        assert record["bench"] == "dse_engine"
        assert record["results"] == {"warm_speedup": 3.0}
        # provenance rides along so other machines never gate this line
        for key in bench_history.SIGNATURE_KEYS:
            assert key in record["node"]

    def test_regression_exits_one(self, tmp_path, capsys):
        ledger = tmp_path / "history.jsonl"
        from repro.obs.manifest import node_roster

        ledger.write_text(
            json.dumps(
                {
                    "bench": "dse_engine",
                    "node": node_roster(),
                    "results": {"warm_speedup": 100.0},
                }
            )
            + "\n"
        )
        self._write_bench(tmp_path, warm_speedup=1.0)
        code = bench_history.main(
            ["--root", str(tmp_path), "--history", str(ledger)]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_check_only_does_not_append(self, tmp_path, capsys):
        self._write_bench(tmp_path, warm_speedup=3.0)
        ledger = tmp_path / "history.jsonl"
        code = bench_history.main(
            ["--root", str(tmp_path), "--history", str(ledger), "--check-only"]
        )
        assert code == 0
        assert not ledger.exists()
        capsys.readouterr()

    def test_no_bench_files_is_a_noop(self, tmp_path, capsys):
        code = bench_history.main(
            ["--root", str(tmp_path), "--history", str(tmp_path / "h.jsonl")]
        )
        assert code == 0
        assert "nothing to do" in capsys.readouterr().out

    def test_malformed_bench_file_skipped(self, tmp_path, capsys):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        self._write_bench(tmp_path, warm_speedup=2.0)
        ledger = tmp_path / "h.jsonl"
        code = bench_history.main(
            ["--root", str(tmp_path), "--history", str(ledger)]
        )
        assert code == 0
        assert "skipping malformed" in capsys.readouterr().out
        assert len(bench_history.load_history(ledger)) == 1
