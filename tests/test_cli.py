"""Tests for the ``focal`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.studies.registry import study_names


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_requires_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure"])


class TestList:
    def test_lists_all_studies(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == study_names()


class TestFigure:
    def test_ascii_output(self, capsys):
        assert main(["figure", "figure7"]) == 0
        out = capsys.readouterr().out
        assert "figure7" in out
        assert "legend:" in out

    def test_csv_output(self, capsys):
        assert main(["figure", "figure1", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("figure,panel,series,label,x,y")

    def test_json_output(self, capsys):
        assert main(["figure", "figure8", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["figure_id"] == "figure8"

    def test_md_output(self, capsys):
        assert main(["figure", "figure9", "--format", "md"]) == 0
        assert "## figure9" in capsys.readouterr().out

    def test_out_file(self, tmp_path, capsys):
        target = tmp_path / "fig.csv"
        assert main(["figure", "figure1", "--out", str(target)]) == 0
        assert target.exists()
        assert "wrote" in capsys.readouterr().out

    def test_unknown_figure_exits_2(self, capsys):
        assert main(["figure", "figure42"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "unknown study" in err


class TestCompare:
    def test_fsc_vs_ooo(self, capsys):
        code = main(
            ["compare", "--x", "1.01", "1.64", "1.01", "--y", "1.39", "1.75", "2.32"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "strongly sustainable" in out
        assert "embodied-dominated" in out
        assert "operational-dominated" in out

    def test_single_alpha(self, capsys):
        code = main(
            [
                "compare",
                "--x", "1.0", "1.0", "2.0",
                "--y", "1.0", "1.0", "1.0",
                "--alpha", "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "less sustainable" in out
        assert out.count("sustainable") == 1  # only one regime row

    def test_requires_both_designs(self):
        with pytest.raises(SystemExit):
            main(["compare", "--x", "1", "1", "1"])


class TestRoadmap:
    def test_both_policies_printed(self, capsys):
        assert main(["roadmap", "--generations", "2"]) == 0
        out = capsys.readouterr().out
        assert "shrink" in out
        assert "constant-area" in out

    def test_custom_parameters(self, capsys):
        assert (
            main(
                [
                    "roadmap",
                    "--generations", "1",
                    "--cores", "2",
                    "--parallel-fraction", "0.9",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert " 4 " in out  # constant-area doubles 2 -> 4


class TestAdvise:
    def test_known_workload(self, capsys):
        assert main(["advise", "mobile"]) == 0
        out = capsys.readouterr().out
        assert "pipeline gating" in out
        assert "strongly sustainable" in out

    def test_regime_flag(self, capsys):
        assert main(["advise", "datacenter", "--regime", "operational"]) == 0
        assert "operational-dominated" in capsys.readouterr().out

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["advise", "gaming"]) == 2
        assert "error:" in capsys.readouterr().err


class TestMechanisms:
    def test_all_match_exit_zero(self, capsys):
        assert main(["mechanisms"]) == 0
        out = capsys.readouterr().out
        assert "26/26" in out
        assert "die shrink" in out


class TestFindings:
    def test_all_pass_exit_zero(self, capsys):
        assert main(["findings"]) == 0
        out = capsys.readouterr().out
        assert "checks pass" in out
        assert "F13" in out

    def test_failed_only_prints_summary_only(self, capsys):
        assert main(["findings", "--failed-only"]) == 0
        out = capsys.readouterr().out
        # No failing checks -> no table rows, just the tally.
        assert "F13" not in out
        assert "checks pass" in out


class TestSweep:
    def test_prints_category_histogram(self, capsys):
        assert main(["sweep", "--max-cores", "16", "--fractions", "0.5", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "10 designs" in out  # 5 core rungs x 2 fractions
        assert "category" in out and "points" in out
        assert "embodied-dominated" in out

    def test_prints_cache_stats_summary(self, capsys):
        assert main(["sweep", "--max-cores", "4"]) == 0
        out = capsys.readouterr().out
        assert "cache: 12 entries" in out  # 3 core rungs x 4 default fractions
        assert "hit ratio" in out

    def test_regime_flag(self, capsys):
        assert main(["sweep", "--max-cores", "4", "--regime", "operational"]) == 0
        assert "operational-dominated" in capsys.readouterr().out

    def test_workers_flag_matches_serial(self, capsys):
        def split_engine_line(text):
            lines = text.splitlines()
            engine = [line for line in lines if line.startswith("engine:")]
            rest = [line for line in lines if not line.startswith("engine:")]
            return engine, rest

        args = ["sweep", "--max-cores", "8", "--fractions", "0.9"]
        assert main(args) == 0
        serial_engine, serial = split_engine_line(capsys.readouterr().out)
        assert main(args + ["--workers", "2", "--chunk-size", "2"]) == 0
        pool_engine, pool = split_engine_line(capsys.readouterr().out)
        # Results are identical; only the engine diagnostics (mode and
        # wall-clock rate) differ between the two paths.
        assert pool == serial
        assert any("columnar path" in line for line in serial_engine)
        assert any("parallel-columnar path" in line for line in pool_engine)

    def test_pareto_flag_prints_frontier(self, capsys):
        assert main(["sweep", "--max-cores", "8", "--pareto"]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "NCF_fw" in out


class TestSweepStore:
    def _sweep(self, store) -> list[str]:
        return ["sweep", "--max-cores", "8", "--store", str(store)]

    def test_cold_then_warm_reuse(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(self._sweep(store)) == 0
        cold = capsys.readouterr().out
        assert "store reuse: 0.0%" in cold
        assert "objects written" in cold
        assert main(self._sweep(store)) == 0
        warm = capsys.readouterr().out
        assert "store reuse: 100.0%" in warm
        assert "0 misses" in warm
        # identical tables: only the engine/cache/store diagnostics move
        strip = lambda text: [
            line
            for line in text.splitlines()
            if not line.startswith(("engine:", "cache:", "store:"))
        ]
        assert strip(warm) == strip(cold)

    def test_warm_checkpoint_bytes_identical(self, tmp_path, capsys):
        store = tmp_path / "store"
        cold_ck = tmp_path / "cold.ckpt"
        warm_ck = tmp_path / "warm.ckpt"
        assert main(self._sweep(store) + ["--checkpoint", str(cold_ck)]) == 0
        assert main(self._sweep(store) + ["--checkpoint", str(warm_ck)]) == 0
        capsys.readouterr()
        assert cold_ck.read_bytes() == warm_ck.read_bytes()

    def test_foreign_directory_exits_2(self, tmp_path, capsys):
        (tmp_path / "keep.txt").write_text("not a store")
        assert main(self._sweep(tmp_path)) == 2
        assert "error:" in capsys.readouterr().err


class TestStoreCommand:
    def _populate(self, tmp_path):
        store = tmp_path / "store"
        assert main(["sweep", "--max-cores", "8", "--store", str(store)]) == 0
        return store

    def test_ls_lists_fingerprints(self, tmp_path, capsys):
        store = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["store", "ls", str(store)]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out
        assert "SymmetricMulticoreFactory" in out

    def test_ls_empty_store(self, tmp_path, capsys):
        assert main(["store", "ls", str(tmp_path / "absent")]) == 0
        assert "empty store" in capsys.readouterr().out

    def test_stat_totals(self, tmp_path, capsys):
        store = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["store", "stat", str(store)]) == 0
        out = capsys.readouterr().out
        assert "fingerprints: 1" in out
        assert "sweep_fingerprints: 1" in out
        assert "bytes:" in out

    def test_gc_reports_and_max_bytes_evicts(self, tmp_path, capsys):
        store = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["store", "gc", str(store)]) == 0
        out = capsys.readouterr().out
        assert "removed 0 temp files" in out
        assert main(["store", "gc", str(store), "--max-bytes", "1"]) == 0
        out = capsys.readouterr().out
        assert "evicted (oldest first): sweeps/" in out
        assert main(["store", "ls", str(store)]) == 0
        assert "empty store" in capsys.readouterr().out

    def test_gc_foreign_directory_exits_2(self, tmp_path, capsys):
        (tmp_path / "keep.txt").write_text("not a store")
        assert main(["store", "gc", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestVersion:
    def test_prints_version(self, capsys):
        import repro

        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert f"focal {repro.__version__}" in out
        assert "python" in out and "numpy" in out

    def test_prints_platform_provenance(self, capsys):
        import platform

        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert "platform:" in out
        assert (platform.machine() or "unknown") in out
        assert "cpus]" in out


class TestObservabilityFlags:
    def test_trace_flag_writes_replayable_report(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        assert main(["sweep", "--max-cores", "8", "--trace", str(target)]) == 0
        captured = capsys.readouterr()
        assert f"wrote trace {target}" in captured.err
        payload = json.loads(target.read_text())
        assert payload["schema"] == "focal-trace/1"
        assert payload["manifest"]["command"] == "sweep"
        assert payload["manifest"]["argv"][0] == "sweep"
        assert payload["manifest"]["node"]["python"]
        root = payload["trace"][0]
        assert root["name"] == "cli:sweep"
        sweep = root["children"][0]
        assert sweep["attributes"]["cache_hit_ratio"] == 0.0
        assert any(c["name"] == "chunk" for c in sweep["children"])
        names = [m["name"] for m in payload["metrics"]]
        assert "focal_evaluations_total" in names

    def test_trace_flag_position_before_subcommand(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        assert main(["--trace", str(target), "sweep", "--max-cores", "4"]) == 0
        capsys.readouterr()
        assert target.exists()

    def test_metrics_flag_prometheus(self, tmp_path, capsys):
        target = tmp_path / "run.prom"
        assert main(["sweep", "--max-cores", "8", "--metrics", str(target)]) == 0
        capsys.readouterr()
        text = target.read_text()
        assert "# TYPE focal_evaluations_total counter" in text
        assert "focal_chunk_seconds_bucket" in text

    def test_metrics_flag_jsonl(self, tmp_path, capsys):
        target = tmp_path / "run.jsonl"
        assert main(["sweep", "--max-cores", "8", "--metrics", str(target)]) == 0
        capsys.readouterr()
        rows = [json.loads(line) for line in target.read_text().splitlines()]
        assert any(r["name"] == "focal_evaluations_total" for r in rows)

    def test_observability_state_reset_after_run(self, tmp_path, capsys):
        from repro.obs import metrics, trace

        target = tmp_path / "trace.json"
        assert main(["sweep", "--max-cores", "4", "--trace", str(target)]) == 0
        capsys.readouterr()
        assert not trace.is_enabled()
        assert not metrics.get_registry().enabled
        assert trace.get_tracer().roots == []

    def test_log_level_debug_emits_structured_stderr(self, capsys):
        assert main(["--log-level", "debug", "list"]) == 0
        captured = capsys.readouterr()
        assert "cli.start command=list" in captured.err
        assert "DEBUG repro:" in captured.err

    def test_default_level_is_quiet(self, capsys):
        assert main(["list"]) == 0
        assert "cli.start" not in capsys.readouterr().err


class TestTraceShow:
    def test_round_trip_written_trace(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        assert main(["sweep", "--max-cores", "16", "--trace", str(target)]) == 0
        capsys.readouterr()
        assert main(["trace", "show", str(target)]) == 0
        out = capsys.readouterr().out
        assert "run manifest" in out
        assert "phase breakdown" in out
        assert "cli:sweep" in out
        assert "chunk" in out
        assert "evals_per_s" in out
        assert "cache_hit_ratio" in out

    def test_show_rejects_non_trace_json(self, tmp_path, capsys):
        bogus = tmp_path / "not-a-trace.json"
        bogus.write_text("{}")
        assert main(["trace", "show", str(bogus)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_show_requires_action(self):
        with pytest.raises(SystemExit):
            main(["trace"])


class TestParallelTelemetry:
    """End-to-end: traced 4-worker sweep -> events -> chrome -> profile."""

    @pytest.fixture(scope="class")
    def traced_report(self, tmp_path_factory):
        target = tmp_path_factory.mktemp("telemetry") / "trace.json"
        assert (
            main(
                [
                    "sweep",
                    "--max-cores",
                    "16",
                    "--workers",
                    "4",
                    "--chunk-size",
                    "16",
                    "--trace",
                    str(target),
                ]
            )
            == 0
        )
        return target

    def test_report_carries_aligned_worker_events(self, traced_report):
        payload = json.loads(traced_report.read_text())
        events = payload["events"]
        assert events, "parallel traced sweep recorded no worker events"
        workers = {e["worker"] for e in events if e.get("track") != "supervisor"}
        assert len(workers) == 4  # every planned worker reported in
        names = {e["name"] for e in events}
        assert "worker.init" in names
        assert "shard" in names
        # every worker event is clock-aligned onto the span axis
        assert all("t_rel" in e for e in events)
        shard = next(e for e in events if e["name"] == "shard")
        assert shard["attrs"]["compute_s"] >= 0.0
        assert shard["dur_s"] > 0.0

    def test_chrome_export_one_track_per_worker(
        self, traced_report, tmp_path, capsys
    ):
        out = tmp_path / "timeline.json"
        assert (
            main(
                [
                    "trace",
                    "export",
                    str(traced_report),
                    "--format",
                    "chrome",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        assert f"wrote {out}" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        from repro.obs.chrome import WORKER_PID

        worker_tids = {
            e["tid"]
            for e in doc["traceEvents"]
            if e["pid"] == WORKER_PID and e["ph"] != "M"
        }
        assert len(worker_tids) == 4
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X"} <= phases

    def test_export_default_output_path(self, traced_report, capsys):
        assert main(["trace", "export", str(traced_report)]) == 0
        capsys.readouterr()
        sibling = traced_report.with_suffix(".chrome.json")
        assert sibling.exists()
        assert json.loads(sibling.read_text())["traceEvents"]

    def test_profile_attribution_sums_to_wall_clock(
        self, traced_report, capsys
    ):
        assert main(["profile", str(traced_report)]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        start = next(
            i for i, l in enumerate(lines) if "wall-clock attribution" in l
        )
        end = next(i for i, l in enumerate(lines) if "per-worker" in l)
        shares = []
        for line in lines[start:end]:
            token = line.rstrip().rsplit(None, 1)[-1] if line.strip() else ""
            if token.endswith("%"):
                shares.append(float(token[:-1]))
        assert len(shares) == 5  # serial/dispatch/compute/shm/straggler
        assert sum(shares) == pytest.approx(100.0, abs=0.5)
        assert "top cost center" in out
        assert "attainable" in out and "achieved" in out

    def test_export_rejects_non_trace_json(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        assert main(["trace", "export", str(bogus)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_profile_requires_file_or_bench(self, capsys):
        assert main(["profile"]) == 2
        assert "profile" in capsys.readouterr().err

    def test_profile_rejects_serial_trace(self, tmp_path, capsys):
        target = tmp_path / "serial.json"
        assert main(["sweep", "--max-cores", "8", "--trace", str(target)]) == 0
        capsys.readouterr()
        assert main(["profile", str(target)]) == 2
        assert "error:" in capsys.readouterr().err


class TestSweepContainment:
    """The exit-code contract: 0 clean, 3 salvaged, 4 quarantined."""

    @staticmethod
    def _poison_ledger(path, params):
        """A ledger already naming *params* poison for the CLI factory."""
        from repro.dse.factories import SymmetricMulticoreFactory
        from repro.resilience import QuarantineLedger, describe_factory

        ledger = QuarantineLedger(path)
        ledger.record(
            describe_factory(SymmetricMulticoreFactory()),
            params,
            kind="poison",
            reason="planted by test",
        )
        return ledger

    def test_clean_sweep_with_ledger_exits_zero(self, tmp_path, capsys):
        ledger = tmp_path / "poison.json"
        assert (
            main(
                ["sweep", "--max-cores", "8", "--quarantine", str(ledger)]
            )
            == 0
        )
        assert "quarantine:" not in capsys.readouterr().out

    def test_known_poison_points_exit_four(self, tmp_path, capsys):
        # The CLI grid is geometric cores x fractions; cores come out of
        # geometric_range as floats.
        ledger = tmp_path / "poison.json"
        self._poison_ledger(ledger, {"cores": 2.0, "f": 0.5})
        code = main(
            [
                "sweep",
                "--max-cores",
                "8",
                "--fractions",
                "0.5",
                "0.9",
                "--quarantine",
                str(ledger),
            ]
        )
        assert code == 4
        out = capsys.readouterr().out
        assert "quarantine: 1 poison point(s) excluded" in out
        assert str(ledger) in out

    def test_quarantined_sweep_excludes_only_the_poison_point(
        self, tmp_path, capsys
    ):
        args = ["sweep", "--max-cores", "8", "--fractions", "0.5"]
        assert main(args) == 0
        clean = capsys.readouterr().out

        ledger = tmp_path / "poison.json"
        self._poison_ledger(ledger, {"cores": 4.0, "f": 0.5})
        assert main(args + ["--quarantine", str(ledger)]) == 4
        poisoned = capsys.readouterr().out
        # 4 cores x 1 fraction = 4 designs clean, 3 with one quarantined.
        assert "4 designs" in clean
        assert "3 designs" in poisoned

    def test_salvaged_run_exits_three(self, tmp_path, capsys, monkeypatch):
        """--salvage + an irrecoverable pool: exit 3, report printed."""
        import repro.dse.batch as batch_mod
        from repro.resilience import FailureReport

        report = FailureReport(
            reason="irrecoverable worker pool; completed prefix salvaged",
            error="injected",
            completed_chunks=1,
            total_chunks=4,
            completed_points=16,
            pending_points=48,
            checkpoint=str(tmp_path / "sweep.ckpt"),
        )
        real = batch_mod.BatchExplorer.explore_arrays

        def salvaged(self, grid, **kwargs):
            result = real(self, grid, **kwargs)
            import dataclasses

            return dataclasses.replace(result, failure=report)

        monkeypatch.setattr(batch_mod.BatchExplorer, "explore_arrays", salvaged)
        code = main(
            ["sweep", "--max-cores", "8", "--workers", "2", "--salvage"]
        )
        assert code == 3
        out = capsys.readouterr().out
        assert "salvaged: 1/4 chunks" in out
        assert "resume from" in out

    def test_salvage_outranks_quarantine(self, tmp_path, capsys, monkeypatch):
        """A partial result is reported before which points were lost."""
        import repro.dse.batch as batch_mod
        from repro.resilience import FailureReport

        report = FailureReport(
            reason="r", error="e", completed_chunks=0, total_chunks=1,
            completed_points=0, pending_points=8,
        )
        real = batch_mod.BatchExplorer.explore_arrays

        def salvaged(self, grid, **kwargs):
            import dataclasses

            result = real(self, grid, **kwargs)
            return dataclasses.replace(
                result,
                failure=report,
                quarantined=({"cores": 2.0, "f": 0.5},),
            )

        monkeypatch.setattr(batch_mod.BatchExplorer, "explore_arrays", salvaged)
        assert main(["sweep", "--max-cores", "8"]) == 3

    def test_salvage_flag_parses(self):
        args = build_parser().parse_args(
            ["sweep", "--salvage", "--quarantine", "p.json"]
        )
        assert args.salvage is True
        assert args.quarantine == "p.json"

    def test_exit_code_contract_is_documented(self):
        doc = main.__doc__
        for needle in ("``0``", "``2``", "``3``", "``4``", "``130``"):
            assert needle in doc
