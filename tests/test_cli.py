"""Tests for the ``focal`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.studies.registry import study_names


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_requires_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure"])


class TestList:
    def test_lists_all_studies(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == study_names()


class TestFigure:
    def test_ascii_output(self, capsys):
        assert main(["figure", "figure7"]) == 0
        out = capsys.readouterr().out
        assert "figure7" in out
        assert "legend:" in out

    def test_csv_output(self, capsys):
        assert main(["figure", "figure1", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("figure,panel,series,label,x,y")

    def test_json_output(self, capsys):
        assert main(["figure", "figure8", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["figure_id"] == "figure8"

    def test_md_output(self, capsys):
        assert main(["figure", "figure9", "--format", "md"]) == 0
        assert "## figure9" in capsys.readouterr().out

    def test_out_file(self, tmp_path, capsys):
        target = tmp_path / "fig.csv"
        assert main(["figure", "figure1", "--out", str(target)]) == 0
        assert target.exists()
        assert "wrote" in capsys.readouterr().out

    def test_unknown_figure_raises(self):
        from repro.core.errors import UnknownStudyError

        with pytest.raises(UnknownStudyError):
            main(["figure", "figure42"])


class TestCompare:
    def test_fsc_vs_ooo(self, capsys):
        code = main(
            ["compare", "--x", "1.01", "1.64", "1.01", "--y", "1.39", "1.75", "2.32"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "strongly sustainable" in out
        assert "embodied-dominated" in out
        assert "operational-dominated" in out

    def test_single_alpha(self, capsys):
        code = main(
            [
                "compare",
                "--x", "1.0", "1.0", "2.0",
                "--y", "1.0", "1.0", "1.0",
                "--alpha", "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "less sustainable" in out
        assert out.count("sustainable") == 1  # only one regime row

    def test_requires_both_designs(self):
        with pytest.raises(SystemExit):
            main(["compare", "--x", "1", "1", "1"])


class TestRoadmap:
    def test_both_policies_printed(self, capsys):
        assert main(["roadmap", "--generations", "2"]) == 0
        out = capsys.readouterr().out
        assert "shrink" in out
        assert "constant-area" in out

    def test_custom_parameters(self, capsys):
        assert (
            main(
                [
                    "roadmap",
                    "--generations", "1",
                    "--cores", "2",
                    "--parallel-fraction", "0.9",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert " 4 " in out  # constant-area doubles 2 -> 4


class TestAdvise:
    def test_known_workload(self, capsys):
        assert main(["advise", "mobile"]) == 0
        out = capsys.readouterr().out
        assert "pipeline gating" in out
        assert "strongly sustainable" in out

    def test_regime_flag(self, capsys):
        assert main(["advise", "datacenter", "--regime", "operational"]) == 0
        assert "operational-dominated" in capsys.readouterr().out

    def test_unknown_workload(self):
        from repro.core.errors import ValidationError

        with pytest.raises(ValidationError):
            main(["advise", "gaming"])


class TestMechanisms:
    def test_all_match_exit_zero(self, capsys):
        assert main(["mechanisms"]) == 0
        out = capsys.readouterr().out
        assert "26/26" in out
        assert "die shrink" in out


class TestFindings:
    def test_all_pass_exit_zero(self, capsys):
        assert main(["findings"]) == 0
        out = capsys.readouterr().out
        assert "checks pass" in out
        assert "F13" in out

    def test_failed_only_prints_summary_only(self, capsys):
        assert main(["findings", "--failed-only"]) == 0
        out = capsys.readouterr().out
        # No failing checks -> no table rows, just the tally.
        assert "F13" not in out
        assert "checks pass" in out


class TestSweep:
    def test_prints_category_histogram(self, capsys):
        assert main(["sweep", "--max-cores", "16", "--fractions", "0.5", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "10 designs" in out  # 5 core rungs x 2 fractions
        assert "category" in out and "points" in out
        assert "embodied-dominated" in out

    def test_regime_flag(self, capsys):
        assert main(["sweep", "--max-cores", "4", "--regime", "operational"]) == 0
        assert "operational-dominated" in capsys.readouterr().out

    def test_workers_flag_matches_serial(self, capsys):
        args = ["sweep", "--max-cores", "8", "--fractions", "0.9"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--workers", "2", "--chunk-size", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_pareto_flag_prints_frontier(self, capsys):
        assert main(["sweep", "--max-cores", "8", "--pareto"]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "NCF_fw" in out
