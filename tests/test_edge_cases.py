"""Cross-cutting edge-case tests.

Small negative-path and boundary checks that don't belong to a single
module's main suite but would each catch a real regression.
"""

from __future__ import annotations

import pytest

from repro.core.design import DesignPoint
from repro.core.errors import ValidationError


class TestCLIErrorPaths:
    def test_out_with_unknown_suffix(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["figure", "figure1", "--out", str(tmp_path / "fig.xlsx")]) == 2
        assert "suffix" in capsys.readouterr().err

    def test_out_html(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "fig.html"
        assert main(["figure", "figure7", "--out", str(target)]) == 0
        assert target.read_text().startswith("<!DOCTYPE html>")

    def test_compare_rejects_invalid_design(self, capsys):
        from repro.cli import main

        assert main(["compare", "--x", "0", "1", "1", "--y", "1", "1", "1"]) == 2
        assert "error:" in capsys.readouterr().err


class TestAsciiPlotEdges:
    def test_marker_cycling_beyond_palette(self):
        from repro.report.ascii_plot import render_panel
        from repro.report.series import Panel, Point, Series

        many = tuple(
            Series(f"s{i}", (Point(float(i), float(i)),)) for i in range(15)
        )
        panel = Panel(name="crowd", x_label="x", y_label="y", series=many)
        out = render_panel(panel)
        assert out.count("\n") > 10  # renders without error
        assert "s14" in out  # legend lists every series

    def test_all_identical_points(self):
        from repro.report.ascii_plot import render_panel
        from repro.report.series import Panel, Point, Series

        panel = Panel(
            name="flat",
            x_label="x",
            y_label="y",
            series=(Series("s", (Point(1.0, 1.0), Point(1.0, 1.0))),),
        )
        assert "flat" in render_panel(panel)  # degenerate extent padded


class TestGridEdges:
    def test_three_axis_iteration_order(self):
        from repro.dse.grid import ParameterGrid

        grid = ParameterGrid({"a": [1, 2], "b": [10], "c": ["x", "y"]})
        combos = list(grid)
        assert combos[0] == {"a": 1, "b": 10, "c": "x"}
        assert combos[1] == {"a": 1, "b": 10, "c": "y"}
        assert combos[2] == {"a": 2, "b": 10, "c": "x"}
        assert len(combos) == 4

    def test_single_value_axes(self):
        from repro.dse.grid import ParameterGrid

        grid = ParameterGrid({"a": [1]})
        assert list(grid) == [{"a": 1}]


class TestActEdges:
    def test_focal_design_from_zero_power_spec(self):
        """A powered-off chip must still produce a valid DesignPoint
        (power clamped to epsilon, not zero)."""
        from repro.act.compare import focal_design_from_spec
        from repro.act.model import ActChipSpec

        spec = ActChipSpec("off", die_area_mm2=100.0, avg_power_w=0.0)
        design = focal_design_from_spec(spec)
        assert design.power > 0.0

    def test_compare_with_zero_power_baseline(self):
        """ACT comparison degrades gracefully when the baseline draws
        no power (power ratio falls back to 1)."""
        from repro.act.compare import compare_focal_vs_act
        from repro.act.model import ActChipSpec

        report = compare_focal_vs_act(
            ActChipSpec("x", die_area_mm2=100.0, avg_power_w=10.0),
            ActChipSpec("y", die_area_mm2=100.0, avg_power_w=0.0),
        )
        assert report.focal_ncf > 0.0


class TestAdvisorDeterminism:
    def test_stable_order_across_calls(self):
        from repro.core.scenario import EMBODIED_DOMINATED
        from repro.workloads import advise, workload_by_name

        first = [r.mechanism for r in advise(workload_by_name("desktop"), EMBODIED_DOMINATED)]
        second = [r.mechanism for r in advise(workload_by_name("desktop"), EMBODIED_DOMINATED)]
        assert first == second


class TestDesignPointEdges:
    def test_extreme_but_finite_values(self):
        d = DesignPoint("extreme", area=1e-9, perf=1e9, power=1e-9)
        assert d.energy == pytest.approx(1e-18)

    def test_equality_by_value(self):
        a = DesignPoint("x", area=1.0, perf=2.0, power=3.0)
        b = DesignPoint("x", area=1.0, perf=2.0, power=3.0)
        assert a == b
        assert a != b.renamed("y")


class TestFindingCheckEdges:
    def test_mixed_str_float_comparison_fails_closed(self):
        from repro.studies.findings import FindingCheck

        check = FindingCheck("T", "c", paper_value="strong", computed=1.0)
        assert not check.passed

    def test_negative_values_relative_tolerance(self):
        from repro.studies.findings import FindingCheck

        assert FindingCheck("T", "c", -1.0, -1.01, tolerance=0.02).passed
        assert not FindingCheck("T", "c", -1.0, -1.05, tolerance=0.02).passed
