"""Smoke tests: every example script runs cleanly end to end.

The examples are part of the public contract (README links them); a
refactor that breaks one must fail the suite, not a user.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _run(script: Path, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_examples_discovered():
    assert len(EXAMPLES) >= 10


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script: Path, tmp_path: Path):
    # reproduce_paper writes files; point it at a temp dir.
    args = (str(tmp_path / "out"),) if script.stem == "reproduce_paper" else ()
    proc = _run(script, *args)
    assert proc.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{proc.stdout[-2000:]}"
        f"\n--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} produced no output"


def test_reproduce_paper_writes_all_formats(tmp_path: Path):
    out = tmp_path / "out"
    proc = _run(EXAMPLES_DIR / "reproduce_paper.py", str(out))
    assert proc.returncode == 0
    for suffix in ("csv", "md", "html"):
        files = list(out.glob(f"figure*.{suffix}"))
        assert len(files) == 9, f"expected 9 .{suffix} figures, got {len(files)}"
    assert (out / "findings.txt").exists()
