"""Cross-module integration tests.

These tests wire several subsystems together the way a downstream user
would: build designs from the substrate models, run them through the
core NCF machinery, explore, classify robustly, and export.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.accel.accelerator import HAMEED_H264, AcceleratedSystem
from repro.amdahl.asymmetric import AsymmetricMulticore
from repro.amdahl.symmetric import SymmetricMulticore
from repro.core.classify import Sustainability
from repro.core.design import DesignPoint
from repro.core.ncf import ncf
from repro.core.scenario import (
    EMBODIED_DOMINATED,
    OPERATIONAL_DOMINATED,
    UseScenario,
)
from repro.core.uncertainty import robust_classification
from repro.dse.explorer import Explorer
from repro.dse.grid import ParameterGrid, geometric_range
from repro.microarch.cores import FSC_CORE, INO_CORE, OOO_CORE
from repro.report.export import figure_to_json
from repro.studies.registry import run_study
from repro.technode.dieshrink import shrunk_design
from repro.technode.scaling import POST_DENNARD_SCALING


class TestPublicAPI:
    def test_top_level_exports_work_together(self):
        """The README quick-start snippet, verbatim."""
        fsc = repro.DesignPoint("FSC", area=1.01, perf=1.64, power=1.01)
        ino = repro.DesignPoint.baseline("InO")
        value = repro.ncf(fsc, ino, repro.UseScenario.FIXED_WORK, alpha=0.8)
        assert value < 1.0
        verdict = repro.classify(fsc, ino, alpha=0.8)
        assert verdict.category is repro.Sustainability.WEAK

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_names_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestEndToEndMulticoreStudy:
    """Rebuild the essence of Figure 3 through the DSE engine and check
    it against the direct study driver."""

    def test_explorer_matches_figure3_series(self):
        baseline = DesignPoint.baseline("1-BCE single-core")
        explorer = Explorer(
            factory=lambda p: SymmetricMulticore(
                cores=int(p["cores"]), parallel_fraction=0.95
            ).design_point(),
            baseline=baseline,
            weight=OPERATIONAL_DOMINATED,
        )
        grid = ParameterGrid({"cores": geometric_range(1, 32)})
        results = {r.params["cores"]: r for r in explorer.explore(grid)}

        fig = run_study("figure3")
        panel = fig.panel("(c) operational dominated, fixed-work")
        series = panel.series_by_name("f=0.95")
        for point, cores in zip(series.points, geometric_range(1, 32)):
            assert point.y == pytest.approx(results[cores].ncf_fixed_work)
            assert point.x == pytest.approx(results[cores].perf)


class TestTechnodePlusAmdahl:
    def test_shrunk_multicore_strongly_sustainable(self):
        """Shrink a full multicore chip: the combination of the Woo-Lee
        model and the die-shrink multipliers stays strongly sustainable
        (Finding #17 applied to a real design)."""
        chip = SymmetricMulticore(8, 0.9).design_point("octa")
        shrunk = shrunk_design(chip, POST_DENNARD_SCALING, 1)
        conclusion = robust_classification(
            shrunk, chip, [EMBODIED_DOMINATED, OPERATIONAL_DOMINATED]
        )
        assert conclusion.unanimous
        assert conclusion.consensus is Sustainability.STRONG


class TestAccelPlusCore:
    def test_accelerated_core_vs_fsc_tradeoff(self):
        """Cross-substrate comparison: an OoO core with the H.264
        accelerator (50 % use) against FSC, normalized to InO — both
        reachable through the same DesignPoint algebra."""
        accelerated = AcceleratedSystem(HAMEED_H264, 0.5).design_point("OoO+acc")
        # Express the accelerated system in InO-normalized units: the
        # host core is OoO, which is 1.39x InO area etc.
        combined = DesignPoint(
            name="OoO+acc (InO units)",
            area=accelerated.area * OOO_CORE.area,
            perf=accelerated.perf * OOO_CORE.perf,
            power=accelerated.power * OOO_CORE.power,
        )
        for scenario in UseScenario:
            value_combined = ncf(combined, INO_CORE, scenario, 0.2)
            value_fsc = ncf(FSC_CORE, INO_CORE, scenario, 0.2)
            # The accelerator halves OoO's operational cost but FSC is
            # still the lower-footprint design at this utilization.
            assert value_fsc < value_combined


class TestHeterogeneityRobustness:
    def test_finding4_verdict_depends_on_scenario_not_alpha(self):
        """Heterogeneity is weakly sustainable in *both* alpha regimes:
        the disagreement is across scenarios, not weights — exactly why
        the paper calls it weak rather than inconclusive."""
        asym = AsymmetricMulticore(32, 4, 0.8).design_point()
        sym = SymmetricMulticore(32, 0.8).design_point()
        conclusion = robust_classification(
            asym, sym, [EMBODIED_DOMINATED, OPERATIONAL_DOMINATED]
        )
        assert conclusion.unanimous
        assert conclusion.consensus is Sustainability.WEAK


class TestExtensionInterplay:
    def test_advisor_consistent_with_mechanism_catalogue(self):
        """The advisor and the catalogue must agree on the workload-
        independent mechanisms (gating, DVFS, turbo, PRE)."""
        from repro.core.scenario import EMBODIED_DOMINATED
        from repro.studies.mechanisms import mechanism_catalogue
        from repro.workloads import advise, workload_by_name

        catalogue = {
            e.mechanism: e.verdict.category
            for e in mechanism_catalogue()
            if e.regime == EMBODIED_DOMINATED.name
        }
        advisor = {
            r.mechanism: r.category
            for r in advise(workload_by_name("desktop"), EMBODIED_DOMINATED)
        }
        assert advisor["pipeline gating"] is catalogue["pipeline gating"]
        assert advisor["turbo boost"] is catalogue["turbo boost"]
        assert advisor["runahead execution (PRE)"] is (
            catalogue["runahead execution (PRE)"]
        )
        assert advisor["DVFS down-scaling"] is catalogue["DVFS down-scaling"]

    def test_rebound_interpolates_case_study(self):
        """Rebound elasticity sweeps the §7 case-study NCF between its
        fixed-work and fixed-time values."""
        from repro.rebound import ReboundModel, rebound_ncf
        from repro.studies.case_study import case_study

        point = next(p for p in case_study() if p.cores == 8)
        design = DesignPoint("new8", area=point.embodied, perf=point.perf, power=point.power)
        old = DesignPoint.baseline("old4")
        fw = point.ncf(UseScenario.FIXED_WORK, 0.2)
        ft = point.ncf(UseScenario.FIXED_TIME, 0.2)
        mid = rebound_ncf(design, old, 0.2, ReboundModel(0.5))
        assert min(fw, ft) <= mid <= max(fw, ft)

    def test_optimizer_reproduces_case_study_recommendation(self):
        """max-perf-subject-to-NCF<=1 over the §7 options picks 6 cores
        (the example's recommendation) when both scenarios must hold."""
        from repro.core.scenario import EMBODIED_DOMINATED
        from repro.dse.explorer import Explorer
        from repro.dse.grid import ParameterGrid
        from repro.dse.optimizer import max_perf_subject_to_ncf
        from repro.studies.case_study import case_study

        points = {p.cores: p for p in case_study()}

        def factory(params):
            p = points[params["cores"]]
            return DesignPoint(
                f"{p.cores}c", area=p.embodied, perf=p.perf, power=p.power
            )

        explorer = Explorer(
            factory=factory,
            baseline=DesignPoint.baseline("old quad-core"),
            weight=EMBODIED_DOMINATED,
        )
        results = explorer.explore(ParameterGrid({"cores": [4, 5, 6, 7, 8]}))
        best = max_perf_subject_to_ncf(results, 1.0, require_both_scenarios=True)
        assert best.params["cores"] == 6

    def test_chiplet_outcome_flows_into_ncf(self):
        """Chiplet outcomes are plain design points: compare a split
        design against monolithic with the core NCF machinery."""
        from repro.core.ncf import ncf
        from repro.multichip import ChipletPartition, evaluate_partition

        mono = evaluate_partition(ChipletPartition(1, 800.0)).design_point("mono")
        quad = evaluate_partition(ChipletPartition(4, 800.0)).design_point("quad")
        value = ncf(quad, mono, UseScenario.FIXED_WORK, alpha=0.8)
        assert value < 1.0  # yield win dominates at reticle scale


class TestStudiesExport:
    @pytest.mark.parametrize("name", ["figure1", "figure5", "figure9"])
    def test_every_figure_exports_valid_json(self, name):
        payload = json.loads(figure_to_json(run_study(name)))
        assert payload["figure_id"] == name
        assert payload["panels"]
