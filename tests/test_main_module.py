"""Tests for ``python -m repro`` and package metadata."""

from __future__ import annotations

import subprocess
import sys

import repro


class TestMainModule:
    def test_python_dash_m_list(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "figure3" in proc.stdout

    def test_python_dash_m_bad_command(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "no-such-command"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode != 0


class TestPackageMetadata:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_docstring_names_the_paper(self):
        assert "FOCAL" in repro.__doc__
        assert "ASPLOS" in repro.__doc__

    def test_quickstart_snippet_in_docstring_runs(self):
        """The doc's quick-start code must actually work."""
        namespace: dict = {}
        snippet = (
            "from repro import DesignPoint, UseScenario, ncf, classify\n"
            "fsc = DesignPoint('FSC', area=1.01, perf=1.64, power=1.01)\n"
            "ino = DesignPoint.baseline('InO')\n"
            "value = ncf(fsc, ino, UseScenario.FIXED_WORK, alpha=0.8)\n"
            "verdict = classify(fsc, ino, alpha=0.8).category\n"
        )
        exec(snippet, namespace)  # noqa: S102 - our own documented snippet
        assert namespace["value"] < 1.0
