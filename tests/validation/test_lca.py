"""Unit tests for the LCA validation-limits module (§3.6)."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.validation.lca import SystemLCA, chip_attribution_error, validation_gap


class TestSystemLCA:
    def test_total_aggregates_everything(self):
        lca = SystemLCA("laptop", chip=30.0)
        assert lca.total == pytest.approx(30.0 + lca.rest_of_system)

    def test_chip_share(self):
        lca = SystemLCA("x", chip=50.0, other_components={"rest": 50.0})
        assert lca.chip_share == pytest.approx(0.5)

    def test_custom_components(self):
        lca = SystemLCA("x", chip=10.0, other_components={"psu": 5.0})
        assert lca.rest_of_system == 5.0

    def test_rejects_negative_component(self):
        with pytest.raises(ValidationError):
            SystemLCA("x", chip=10.0, other_components={"psu": -1.0})

    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            SystemLCA("", chip=1.0)


class TestAttributionError:
    def test_identical_devices_no_error(self):
        a = SystemLCA("a", chip=30.0)
        assert chip_attribution_error(a, a) == pytest.approx(1.0)

    def test_rest_of_system_swamps_chip_difference(self):
        """The §3.6 point: a 3x chip difference shows up as a much
        smaller total difference, so the chip ratio inferred from the
        totals is badly wrong."""
        small_chip = SystemLCA("small", chip=10.0)
        big_chip = SystemLCA("big", chip=30.0)
        error = chip_attribution_error(big_chip, small_chip)
        assert error > 2.0  # chip ratio 3x, total ratio ~1.14x

    def test_chip_dominated_device_attributes_well(self):
        a = SystemLCA("a", chip=1000.0, other_components={"rest": 1.0})
        b = SystemLCA("b", chip=2000.0, other_components={"rest": 1.0})
        assert chip_attribution_error(b, a) == pytest.approx(1.0, abs=1e-3)

    def test_zero_baseline_rejected(self):
        a = SystemLCA("a", chip=0.0, other_components={})
        b = SystemLCA("b", chip=10.0)
        with pytest.raises(ValidationError):
            chip_attribution_error(b, a)


class TestValidationGap:
    def test_no_gap_when_chip_is_everything(self):
        assert validation_gap(2.0, 1.0) == pytest.approx(0.0)

    def test_no_gap_when_prediction_is_one(self):
        assert validation_gap(1.0, 0.3) == pytest.approx(0.0)

    def test_gap_grows_as_chip_share_shrinks(self):
        gaps = [validation_gap(0.5, share) for share in (0.8, 0.4, 0.1)]
        assert gaps == sorted(gaps)

    def test_closed_form(self):
        # ratio 0.5, share 0.2: total = 0.1 + 0.8 = 0.9 -> gap 0.4/0.9.
        assert validation_gap(0.5, 0.2) == pytest.approx(0.4 / 0.9)

    def test_act_scale_gap_is_plausible(self):
        """A 30 % chip improvement validated against a device whose
        chip is ~25 % of total shows a 'non-negligible' double-digit
        gap — the paper's reading of ACT's validation."""
        gap = validation_gap(0.7, 0.25)
        assert 0.05 < gap < 0.25

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            validation_gap(0.0, 0.5)
        with pytest.raises(ValidationError):
            validation_gap(1.0, 0.0)
