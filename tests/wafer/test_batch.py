"""Columnar wafer kernels must be bit-exact with the scalar substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DomainError, ValidationError
from repro.wafer.batch import (
    binned_yield_array,
    bose_einstein_yield_array,
    chips_per_wafer_array,
    de_vries_valid_mask,
    die_yield_array,
    footprint_per_chip_array,
    footprint_sweep,
    good_chips_per_wafer_array,
    gross_dies_array,
    murphy_yield_array,
    normalized_footprint_array,
    poisson_yield_array,
    seeds_yield_array,
)
from repro.wafer.binning import BinnedYield, BinningModel
from repro.wafer.embodied import EmbodiedFootprintModel
from repro.wafer.geometry import WAFER_300MM, chips_per_wafer
from repro.wafer.yield_models import (
    BoseEinsteinYield,
    MurphyYield,
    PerfectYield,
    PoissonYield,
    SeedsYield,
)

AREAS = np.asarray([1.0, 25.0, 100.0, 147.0, 350.0, 800.0, 1200.0])
#: Just inside the de Vries validity root: the hardest geometric corner.
NEAR_MAX_AREA = WAFER_300MM.max_practical_die_area_mm2() * (1.0 - 1e-9)


class TestGeometryKernels:
    def test_gross_dies_bit_exact(self):
        batch = gross_dies_array(AREAS)
        scalar = [WAFER_300MM.gross_dies(float(a)) for a in AREAS]
        assert batch.tolist() == scalar

    def test_chips_per_wafer_bit_exact(self):
        batch = chips_per_wafer_array(AREAS)
        scalar = [chips_per_wafer(float(a)) for a in AREAS]
        assert batch.tolist() == scalar

    def test_near_max_practical_area(self):
        batch = chips_per_wafer_array([NEAR_MAX_AREA])
        assert batch[0] == chips_per_wafer(NEAR_MAX_AREA)

    def test_oversized_area_raises_domain_error(self):
        over = WAFER_300MM.max_practical_die_area_mm2() * 1.01
        with pytest.raises(DomainError):
            gross_dies_array([100.0, over])
        with pytest.raises(DomainError):
            WAFER_300MM.gross_dies(over)

    def test_de_vries_valid_mask_matches_scalar_raises(self):
        over = WAFER_300MM.max_practical_die_area_mm2() * 1.01
        areas = [100.0, NEAR_MAX_AREA, over]
        mask = de_vries_valid_mask(areas)
        for area, ok in zip(areas, mask):
            if ok:
                WAFER_300MM.gross_dies(area)  # must not raise
            else:
                with pytest.raises(DomainError):
                    WAFER_300MM.gross_dies(area)

    def test_rejects_non_positive_areas(self):
        with pytest.raises(ValidationError):
            gross_dies_array([100.0, 0.0])


class TestYieldKernels:
    @pytest.mark.parametrize("density", [0.0, 0.09, 0.5, 2.0])
    def test_poisson_bit_exact(self, density):
        model = PoissonYield(defect_density_per_cm2=density)
        batch = poisson_yield_array(AREAS, density)
        assert batch.tolist() == [model.die_yield(float(a)) for a in AREAS]

    @pytest.mark.parametrize("density", [0.0, 0.09, 0.5, 2.0])
    def test_murphy_bit_exact(self, density):
        model = MurphyYield(defect_density_per_cm2=density)
        batch = murphy_yield_array(AREAS, density)
        assert batch.tolist() == [model.die_yield(float(a)) for a in AREAS]

    @pytest.mark.parametrize("density", [0.09, 5.0, 50.0])
    def test_seeds_bit_exact_even_at_high_defect_density(self, density):
        model = SeedsYield(defect_density_per_cm2=density)
        batch = seeds_yield_array(AREAS, density)
        assert batch.tolist() == [model.die_yield(float(a)) for a in AREAS]

    def test_bose_einstein_bit_exact(self):
        model = BoseEinsteinYield(defect_density_per_cm2=0.2, critical_layers=8)
        batch = bose_einstein_yield_array(AREAS, 0.2, 8)
        assert batch.tolist() == [model.die_yield(float(a)) for a in AREAS]

    def test_binned_yield_bit_exact(self):
        binning = BinningModel(
            blocks=8, max_defective_blocks=2, defect_density_per_cm2=0.3
        )
        batch = binned_yield_array(AREAS, binning)
        assert batch.tolist() == [
            binning.sellable_fraction(float(a)) for a in AREAS
        ]

    def test_die_yield_array_dispatches_every_model(self):
        models = [
            PerfectYield(),
            PoissonYield(defect_density_per_cm2=0.09),
            MurphyYield(defect_density_per_cm2=0.09),
            SeedsYield(defect_density_per_cm2=0.09),
            BoseEinsteinYield(defect_density_per_cm2=0.09, critical_layers=8),
            BinnedYield(
                binning=BinningModel(
                    blocks=8, max_defective_blocks=2, defect_density_per_cm2=0.3
                )
            ),
        ]
        for model in models:
            batch = die_yield_array(model, AREAS)
            assert batch.tolist() == [model.die_yield(float(a)) for a in AREAS]

    def test_die_yield_array_falls_back_for_unknown_models(self):
        class HalfYield:
            def die_yield(self, area_mm2: float) -> float:
                return 0.5

        assert die_yield_array(HalfYield(), AREAS).tolist() == [0.5] * len(AREAS)


class TestFootprintKernels:
    @pytest.fixture
    def model(self):
        return EmbodiedFootprintModel(
            yield_model=MurphyYield(defect_density_per_cm2=0.09)
        )

    def test_good_chips_bit_exact(self, model):
        batch = good_chips_per_wafer_array(model, AREAS)
        assert batch.tolist() == [
            model.good_chips_per_wafer(float(a)) for a in AREAS
        ]

    def test_footprint_per_chip_bit_exact(self, model):
        batch = footprint_per_chip_array(model, AREAS)
        assert batch.tolist() == [
            model.footprint_per_chip(float(a)) for a in AREAS
        ]

    def test_normalized_footprint_bit_exact(self, model):
        batch = normalized_footprint_array(model, AREAS, 100.0)
        assert batch.tolist() == [
            model.normalized_footprint(float(a), 100.0) for a in AREAS
        ]

    def test_footprint_sweep_matches_per_point_calls(self, model):
        pairs = footprint_sweep(model, AREAS.tolist(), 100.0)
        assert pairs == [
            (a, model.normalized_footprint(a, 100.0)) for a in AREAS.tolist()
        ]

    def test_model_sweep_routes_through_kernel(self, model):
        # EmbodiedFootprintModel.sweep is the public columnar entry point.
        areas = [100.0, 200.0, 400.0]
        assert model.sweep(areas, 100.0) == footprint_sweep(model, areas, 100.0)
        values = dict(model.sweep(areas, 100.0))
        assert values[100.0] == 1.0  # self-normalization stays exact
