"""Unit tests for product binning (effective-yield) models."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.wafer.binning import BinnedYield, BinningModel
from repro.wafer.embodied import EmbodiedFootprintModel
from repro.wafer.yield_models import PoissonYield


class TestConstruction:
    def test_rejects_more_defective_than_blocks(self):
        with pytest.raises(ValidationError):
            BinningModel(blocks=4, max_defective_blocks=5, defect_density_per_cm2=0.09)

    def test_rejects_zero_blocks(self):
        with pytest.raises(ValidationError):
            BinningModel(blocks=0, max_defective_blocks=0, defect_density_per_cm2=0.09)

    def test_rejects_negative_density(self):
        with pytest.raises(ValidationError):
            BinningModel(blocks=4, max_defective_blocks=0, defect_density_per_cm2=-1.0)


class TestSellableFraction:
    def test_no_binning_matches_poisson(self):
        """With zero tolerated defects and one block the model is the
        plain Poisson yield."""
        model = BinningModel(blocks=1, max_defective_blocks=0, defect_density_per_cm2=0.09)
        poisson = PoissonYield(0.09)
        for area in (100.0, 400.0, 800.0):
            assert model.sellable_fraction(area) == pytest.approx(
                poisson.die_yield(area)
            )

    def test_full_tolerance_sells_everything(self):
        model = BinningModel(blocks=8, max_defective_blocks=8, defect_density_per_cm2=0.09)
        assert model.sellable_fraction(800.0) == pytest.approx(1.0)

    def test_more_tolerance_more_sellable(self):
        area = 600.0
        fractions = [
            BinningModel(
                blocks=8, max_defective_blocks=k, defect_density_per_cm2=0.09
            ).sellable_fraction(area)
            for k in range(9)
        ]
        assert fractions == sorted(fractions)

    def test_sellable_fraction_bounded(self):
        model = BinningModel(blocks=8, max_defective_blocks=2, defect_density_per_cm2=0.5)
        assert 0.0 < model.sellable_fraction(800.0) <= 1.0

    def test_expected_good_blocks(self):
        model = BinningModel(blocks=8, max_defective_blocks=2, defect_density_per_cm2=0.0)
        assert model.expected_good_blocks(400.0) == pytest.approx(8.0)


class TestBinnedYieldAdapter:
    def test_plugs_into_embodied_model(self):
        """The paper's §3.1 argument: binning pushes the embodied curve
        toward perfect yield. One tolerated block out of eight must cut
        the 800 mm^2 per-chip footprint vs the unbinned model."""
        density = 0.09
        unbinned = EmbodiedFootprintModel(
            yield_model=BinnedYield(
                BinningModel(blocks=8, max_defective_blocks=0, defect_density_per_cm2=density)
            )
        )
        binned = EmbodiedFootprintModel(
            yield_model=BinnedYield(
                BinningModel(blocks=8, max_defective_blocks=1, defect_density_per_cm2=density)
            )
        )
        assert binned.footprint_per_chip(800.0) < unbinned.footprint_per_chip(800.0)

    def test_die_yield_matches_sellable_fraction(self):
        binning = BinningModel(blocks=4, max_defective_blocks=1, defect_density_per_cm2=0.09)
        adapter = BinnedYield(binning)
        assert adapter.die_yield(300.0) == binning.sellable_fraction(300.0)
