"""Unit tests for the per-chip embodied-footprint model (Figure 1)."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.wafer.embodied import FIGURE1_REFERENCE_AREA_MM2, EmbodiedFootprintModel
from repro.wafer.geometry import WAFER_300MM
from repro.wafer.yield_models import MurphyYield, PerfectYield


@pytest.fixture
def perfect_model() -> EmbodiedFootprintModel:
    return EmbodiedFootprintModel(yield_model=PerfectYield())


@pytest.fixture
def murphy_model() -> EmbodiedFootprintModel:
    return EmbodiedFootprintModel(yield_model=MurphyYield())


class TestGoodChips:
    def test_perfect_yield_equals_gross(self, perfect_model):
        assert perfect_model.good_chips_per_wafer(100.0) == pytest.approx(
            WAFER_300MM.gross_dies(100.0)
        )

    def test_murphy_fewer_good_chips(self, perfect_model, murphy_model):
        assert murphy_model.good_chips_per_wafer(400.0) < (
            perfect_model.good_chips_per_wafer(400.0)
        )


class TestFootprintPerChip:
    def test_inverse_of_good_chips(self, perfect_model):
        area = 250.0
        assert perfect_model.footprint_per_chip(area) == pytest.approx(
            1.0 / perfect_model.good_chips_per_wafer(area)
        )

    def test_scales_with_wafer_footprint(self):
        small = EmbodiedFootprintModel(footprint_per_wafer=1.0)
        big = EmbodiedFootprintModel(footprint_per_wafer=3.0)
        assert big.footprint_per_chip(200.0) == pytest.approx(
            3.0 * small.footprint_per_chip(200.0)
        )

    def test_rejects_non_positive_wafer_footprint(self):
        with pytest.raises(ValidationError):
            EmbodiedFootprintModel(footprint_per_wafer=0.0)


class TestNormalizedFootprint:
    def test_reference_is_one(self, perfect_model, murphy_model):
        for model in (perfect_model, murphy_model):
            assert model.normalized_footprint(
                FIGURE1_REFERENCE_AREA_MM2
            ) == pytest.approx(1.0)

    def test_monotone_increasing_with_die_size(self, murphy_model):
        areas = [100, 200, 400, 800]
        values = [murphy_model.normalized_footprint(a) for a in areas]
        assert values == sorted(values)

    def test_figure1_perfect_yield_roughly_linear(self, perfect_model):
        """Perfect-yield curve at 800 mm^2 is ~8-10x the 100 mm^2 value
        (slightly super-linear from edge losses)."""
        value = perfect_model.normalized_footprint(800.0)
        assert 8.0 <= value <= 11.0

    def test_figure1_murphy_superlinear(self, perfect_model, murphy_model):
        """Murphy at 800 mm^2 sits well above perfect yield (paper's
        Figure 1 shows ~2x, second-degree-polynomial shape)."""
        murphy = murphy_model.normalized_footprint(800.0)
        perfect = perfect_model.normalized_footprint(800.0)
        assert murphy > 1.5 * perfect
        assert murphy < 25.0  # the paper's y-axis tops out at 20

    def test_custom_reference(self, perfect_model):
        assert perfect_model.normalized_footprint(400.0, 400.0) == pytest.approx(1.0)

    def test_rejects_bad_reference(self, perfect_model):
        with pytest.raises(ValidationError):
            perfect_model.normalized_footprint(100.0, reference_area_mm2=0.0)


class TestSweep:
    def test_sweep_shape_and_content(self, murphy_model):
        areas = [100.0, 200.0, 400.0]
        sweep = murphy_model.sweep(areas)
        assert [a for a, _ in sweep] == areas
        assert sweep[0][1] == pytest.approx(1.0)
        for area, value in sweep:
            assert value == pytest.approx(murphy_model.normalized_footprint(area))
