"""Unit tests for the de Vries chips-per-wafer formula."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import DomainError, ValidationError
from repro.wafer.geometry import (
    WAFER_200MM,
    WAFER_300MM,
    WAFER_450MM,
    Wafer,
    chips_per_wafer,
)


class TestWafer:
    def test_area(self):
        assert WAFER_300MM.area_mm2 == pytest.approx(math.pi * 150**2)

    def test_rejects_non_positive_diameter(self):
        with pytest.raises(ValidationError):
            Wafer(diameter_mm=0.0)

    def test_roster_diameters(self):
        assert WAFER_200MM.diameter_mm == 200
        assert WAFER_300MM.diameter_mm == 300
        assert WAFER_450MM.diameter_mm == 450


class TestGrossDies:
    def test_de_vries_formula_exact(self):
        """100 mm^2 die on 300 mm wafer: pi*300^2/400 - 0.58*pi*300/10."""
        expected = math.pi * 300**2 / (4 * 100) - 0.58 * math.pi * 300 / math.sqrt(100)
        assert WAFER_300MM.gross_dies(100.0) == pytest.approx(expected)

    def test_known_magnitude(self):
        """~650 gross dies for a 100 mm^2 die on a 300 mm wafer."""
        cpw = WAFER_300MM.gross_dies(100.0)
        assert 600 < cpw < 680

    def test_monotone_decreasing_in_area(self):
        areas = [50, 100, 200, 400, 800]
        counts = [WAFER_300MM.gross_dies(a) for a in areas]
        assert counts == sorted(counts, reverse=True)

    def test_edge_loss_reduces_count_below_area_ratio(self):
        """The edge-loss term makes CPW strictly below wafer/die area."""
        area = 400.0
        assert WAFER_300MM.gross_dies(area) < WAFER_300MM.area_mm2 / area

    def test_bigger_wafer_more_chips(self):
        assert WAFER_450MM.gross_dies(100) > WAFER_300MM.gross_dies(100)

    def test_rejects_non_positive_area(self):
        with pytest.raises(ValidationError):
            WAFER_300MM.gross_dies(0.0)

    def test_raises_beyond_validity(self):
        limit = WAFER_300MM.max_practical_die_area_mm2()
        with pytest.raises(DomainError):
            WAFER_300MM.gross_dies(limit * 1.01)

    def test_max_practical_area_is_the_zero(self):
        limit = WAFER_300MM.max_practical_die_area_mm2()
        # Just below the limit the count is tiny but positive.
        assert WAFER_300MM.gross_dies(limit * 0.999) > 0.0

    def test_reticle_scale_dies_still_valid(self):
        """800 mm^2 (the paper's x-axis maximum) is inside validity."""
        assert WAFER_300MM.gross_dies(800.0) > 50


class TestConvenienceWrapper:
    def test_default_wafer_is_300mm(self):
        assert chips_per_wafer(123.0) == WAFER_300MM.gross_dies(123.0)

    def test_explicit_wafer(self):
        assert chips_per_wafer(123.0, WAFER_200MM) == WAFER_200MM.gross_dies(123.0)
