"""Unit tests for the die-yield models."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ValidationError
from repro.wafer.yield_models import (
    TSMC_VOLUME_DEFECT_DENSITY,
    BoseEinsteinYield,
    MurphyYield,
    PerfectYield,
    PoissonYield,
    SeedsYield,
    YieldModel,
)

ALL_MODELS = [
    PerfectYield(),
    PoissonYield(),
    MurphyYield(),
    SeedsYield(),
    BoseEinsteinYield(),
]


class TestProtocol:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_satisfies_yield_model_protocol(self, model):
        assert isinstance(model, YieldModel)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_yield_in_unit_interval(self, model):
        for area in (1.0, 100.0, 800.0):
            y = model.die_yield(area)
            assert 0.0 < y <= 1.0

    @pytest.mark.parametrize(
        "model", [m for m in ALL_MODELS if m.name != "perfect"], ids=lambda m: m.name
    )
    def test_yield_decreases_with_area(self, model):
        areas = [10, 50, 100, 400, 800]
        yields = [model.die_yield(a) for a in areas]
        assert yields == sorted(yields, reverse=True)


class TestPerfectYield:
    def test_always_one(self):
        assert PerfectYield().die_yield(800.0) == 1.0

    def test_rejects_bad_area(self):
        with pytest.raises(ValidationError):
            PerfectYield().die_yield(-1.0)


class TestPoissonYield:
    def test_closed_form(self):
        # 100 mm^2 = 1 cm^2 at D0 = 0.09 -> exp(-0.09).
        assert PoissonYield(0.09).die_yield(100.0) == pytest.approx(math.exp(-0.09))

    def test_zero_defect_density_is_perfect(self):
        assert PoissonYield(0.0).die_yield(500.0) == 1.0

    def test_rejects_negative_density(self):
        with pytest.raises(ValidationError):
            PoissonYield(-0.1)


class TestMurphyYield:
    def test_closed_form(self):
        ad = 8.0 * 0.09  # 800 mm^2 at TSMC density
        expected = ((1 - math.exp(-ad)) / ad) ** 2
        assert MurphyYield().die_yield(800.0) == pytest.approx(expected)

    def test_small_area_limit_is_one(self):
        assert MurphyYield().die_yield(1e-9) == pytest.approx(1.0)

    def test_default_density_matches_paper(self):
        assert MurphyYield().defect_density_per_cm2 == TSMC_VOLUME_DEFECT_DENSITY

    def test_murphy_above_poisson_below_seeds_interior(self):
        """Classical ordering for the same A*D: Poisson < Murphy < Seeds."""
        area = 400.0
        poisson = PoissonYield().die_yield(area)
        murphy = MurphyYield().die_yield(area)
        seeds = SeedsYield().die_yield(area)
        assert poisson < murphy < seeds

    def test_paper_figure1_magnitude(self):
        """At 800 mm^2 the Murphy yield is ~0.52: makes the Figure 1
        Murphy curve reach roughly 2x the perfect-yield curve."""
        y = MurphyYield().die_yield(800.0)
        assert 0.45 < y < 0.60


class TestSeedsYield:
    def test_closed_form(self):
        assert SeedsYield(0.09).die_yield(100.0) == pytest.approx(1 / 1.09)


class TestBoseEinstein:
    def test_reduces_to_seeds_for_one_layer(self):
        area = 250.0
        be = BoseEinsteinYield(critical_layers=1)
        seeds = SeedsYield()
        assert be.die_yield(area) == pytest.approx(seeds.die_yield(area))

    def test_many_layers_approach_poisson(self):
        """(1 + x/n)^-n -> exp(-x) as n grows."""
        area = 400.0
        be = BoseEinsteinYield(critical_layers=1000)
        poisson = PoissonYield()
        assert be.die_yield(area) == pytest.approx(poisson.die_yield(area), rel=1e-2)

    def test_rejects_zero_layers(self):
        with pytest.raises(ValidationError):
            BoseEinsteinYield(critical_layers=0)

    def test_rejects_absurd_layers(self):
        with pytest.raises(ValidationError):
            BoseEinsteinYield(critical_layers=10_000)
