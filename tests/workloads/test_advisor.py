"""Unit tests for the mechanism advisor."""

from __future__ import annotations

import pytest

from repro.core.classify import Sustainability
from repro.core.scenario import EMBODIED_DOMINATED, OPERATIONAL_DOMINATED
from repro.workloads.advisor import advise
from repro.workloads.profiles import WorkloadProfile, workload_by_name


def by_mechanism(recommendations):
    return {rec.mechanism: rec for rec in recommendations}


class TestStructure:
    def test_nine_mechanisms_always(self):
        recs = advise(workload_by_name("desktop"), EMBODIED_DOMINATED)
        assert len(recs) == 9
        assert len({r.mechanism for r in recs}) == 9

    def test_sorted_most_sustainable_first(self):
        recs = advise(workload_by_name("mobile"), EMBODIED_DOMINATED)
        keys = [rec.sort_key() for rec in recs]
        assert keys == sorted(keys)

    def test_rationales_present(self):
        for rec in advise(workload_by_name("datacenter"), OPERATIONAL_DOMINATED):
            assert rec.rationale


class TestPaperAlignedVerdicts:
    def test_gating_always_strong(self):
        for workload in ("desktop", "mobile", "hpc-strong-scaling"):
            for regime in (EMBODIED_DOMINATED, OPERATIONAL_DOMINATED):
                recs = by_mechanism(advise(workload_by_name(workload), regime))
                assert recs["pipeline gating"].category is Sustainability.STRONG

    def test_turbo_always_less(self):
        for regime in (EMBODIED_DOMINATED, OPERATIONAL_DOMINATED):
            recs = by_mechanism(advise(workload_by_name("desktop"), regime))
            assert recs["turbo boost"].category is Sustainability.LESS

    def test_runahead_always_weak(self):
        recs = by_mechanism(advise(workload_by_name("desktop"), EMBODIED_DOMINATED))
        assert recs["runahead execution (PRE)"].category is Sustainability.WEAK

    def test_multicore_strong_on_all_roster_workloads(self):
        """Finding #1 at the advisor's 16-BCE budget."""
        for workload in ("desktop", "mobile", "datacenter", "hpc-strong-scaling"):
            recs = by_mechanism(advise(workload_by_name(workload), OPERATIONAL_DOMINATED))
            assert recs["multicore (vs equal-area big core)"].category is (
                Sustainability.STRONG
            )


class TestWorkloadDependence:
    def test_finding5_heterogeneity_flips_with_parallelism(self):
        """Weakly sustainable on modestly parallel software, not on
        highly parallel software."""
        mobile = by_mechanism(advise(workload_by_name("mobile"), EMBODIED_DOMINATED))
        hpc = by_mechanism(
            advise(workload_by_name("hpc-strong-scaling"), EMBODIED_DOMINATED)
        )
        het = "heterogeneity (vs symmetric multicore)"
        assert mobile[het].category is Sustainability.WEAK
        assert hpc[het].category is Sustainability.LESS
        # And the performance story flips with it (Finding #5).
        assert mobile[het].perf_ratio > 1.0
        assert hpc[het].perf_ratio < 1.2

    def test_finding6_accelerator_needs_utilization(self):
        """Well-used on mobile (30 %), dead weight on HPC (0 %)."""
        mobile = by_mechanism(advise(workload_by_name("mobile"), EMBODIED_DOMINATED))
        hpc = by_mechanism(
            advise(workload_by_name("hpc-strong-scaling"), EMBODIED_DOMINATED)
        )
        acc = "fixed-function accelerator"
        assert mobile[acc].category is Sustainability.STRONG
        assert hpc[acc].category is Sustainability.LESS

    def test_memory_intensity_shapes_llc_verdict(self):
        """Doubling the LLC on a memory-starved workload under the
        operational regime is weakly sustainable; on a compute-bound
        one it is not sustainable at all."""
        starved = by_mechanism(
            advise(workload_by_name("memory-intensive"), OPERATIONAL_DOMINATED)
        )
        compute = by_mechanism(
            advise(
                WorkloadProfile("compute", parallel_fraction=0.5, memory_time_share=0.1),
                OPERATIONAL_DOMINATED,
            )
        )
        assert starved["double the LLC"].category is Sustainability.WEAK
        assert compute["double the LLC"].category is Sustainability.LESS
