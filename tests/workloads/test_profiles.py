"""Unit tests for workload profiles."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.workloads.profiles import (
    WORKLOAD_ROSTER,
    WorkloadProfile,
    workload_by_name,
)


class TestRoster:
    def test_expected_classes(self):
        names = {w.name for w in WORKLOAD_ROSTER}
        assert {"desktop", "mobile", "hpc-strong-scaling", "datacenter"} <= names

    def test_lookup(self):
        assert workload_by_name("mobile").accelerator_utilization == 0.3

    def test_unknown_lists_known(self):
        with pytest.raises(ValidationError, match="mobile"):
            workload_by_name("gaming")

    def test_memory_intensive_matches_cache_study(self):
        w = workload_by_name("memory-intensive")
        assert w.memory_time_share == 0.8
        assert w.parallel_fraction == 0.75

    def test_descriptions_present(self):
        assert all(w.description for w in WORKLOAD_ROSTER)


class TestProfile:
    def test_high_parallelism_threshold(self):
        assert WorkloadProfile("p", parallel_fraction=0.9).is_highly_parallel
        assert not WorkloadProfile("p", parallel_fraction=0.8).is_highly_parallel

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValidationError):
            WorkloadProfile("p", parallel_fraction=1.2)

    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            WorkloadProfile("", parallel_fraction=0.5)

    def test_defaults(self):
        w = WorkloadProfile("p", parallel_fraction=0.5)
        assert w.accelerator_utilization == 0.0
        assert w.memory_time_share == 0.3
