#!/usr/bin/env python3
"""Append benchmark runs to a history ledger and gate regressions.

Each ``BENCH_*.json`` trajectory file at the repo root (written by the
``benchmarks/`` suites) is appended to ``out/bench_history.jsonl`` as
one line carrying the results plus the recording host's platform
provenance (the same ``node_roster()`` identity run manifests embed),
so histories from different machines never gate each other.

After recording, every ``*_speedup`` figure of merit in the new runs
is compared against the best value previously recorded for the same
benchmark on the same platform signature: a drop of more than
``--threshold`` (default 20%) fails the process with exit code 1 and a
one-line explanation per regression. First runs on a fresh platform
only seed the history.

Usage:  python tools/bench_history.py [--history PATH] [--threshold F]
        [--check-only]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_HISTORY = REPO_ROOT / "out" / "bench_history.jsonl"
DEFAULT_THRESHOLD = 0.20

#: node_roster keys that make timings comparable between two runs.
SIGNATURE_KEYS = ("platform", "machine", "python", "numpy", "cpu_count")

#: Figures that must be present AND enforced in a bench's results —
#: a run that demotes one of these to advisory (``*_gate_enforced:
#: false``) or drops it entirely fails the gate. ``parallel_speedup``
#: is the never-slower contract of the ``workers="auto"`` operating
#: point: it is meaningful (and promised >= 1.0) on every host.
REQUIRED_ENFORCED = {"dse": ("parallel_speedup",)}


def node_signature(node: dict) -> tuple:
    """The hashable platform identity timings are comparable within."""
    return tuple(str(node.get(key)) for key in SIGNATURE_KEYS)


def speedup_keys(results: dict) -> dict[str, float]:
    """The figures of merit gated by the history: every numeric
    ``*_speedup`` entry (higher is better).

    Advisory figures are excluded: when the run also recorded
    ``<name>_gate_enforced: false`` the speedup was measured but not
    promised (e.g. ``parallel_speedup`` on a 1-CPU host, where the pool
    can only lose). Those points must neither seed a baseline other
    runs are gated against nor be gated themselves.
    """
    return {
        key: float(value)
        for key, value in results.items()
        if key.endswith("_speedup")
        and isinstance(value, (int, float))
        and results.get(key.removesuffix("_speedup") + "_gate_enforced")
        is not False
    }


def load_history(path: Path) -> list[dict]:
    """Previously recorded runs; torn trailing lines are skipped (the
    appender can die mid-write, the ledger must still load)."""
    if not path.exists():
        return []
    records = []
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return records


def collect_runs(root: Path) -> list[dict]:
    """One history record per BENCH_*.json at *root*."""
    from repro.obs.manifest import node_roster

    node = node_roster()
    runs = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            results = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"bench-history: skipping malformed {path.name}: {exc}")
            continue
        if not isinstance(results, dict):
            continue
        runs.append(
            {
                "bench": path.stem.removeprefix("BENCH_"),
                "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
                "node": node,
                "results": results,
            }
        )
    return runs


def find_regressions(
    runs: list[dict], history: list[dict], threshold: float
) -> list[str]:
    """Human-readable regression lines for every speedup that fell more
    than *threshold* below the best same-platform recorded value."""
    best: dict[tuple, float] = {}
    for record in history:
        signature = node_signature(record.get("node", {}))
        for key, value in speedup_keys(record.get("results", {})).items():
            slot = (record.get("bench"), signature, key)
            best[slot] = max(best.get(slot, value), value)
    regressions = []
    for run in runs:
        signature = node_signature(run["node"])
        for key, value in speedup_keys(run["results"]).items():
            reference = best.get((run["bench"], signature, key))
            if reference is None or reference <= 0:
                continue
            if value < (1.0 - threshold) * reference:
                regressions.append(
                    f"{run['bench']}: {key} {value:.3f}x is "
                    f"{1.0 - value / reference:.1%} below the best recorded "
                    f"{reference:.3f}x on this platform "
                    f"(threshold {threshold:.0%})"
                )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--history",
        type=Path,
        default=DEFAULT_HISTORY,
        help=f"history ledger path (default {DEFAULT_HISTORY})",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the BENCH_*.json trajectory files",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fractional regression that fails the gate (default 0.20)",
    )
    parser.add_argument(
        "--check-only",
        action="store_true",
        help="compare without appending to the ledger",
    )
    args = parser.parse_args(argv)

    runs = collect_runs(args.root)
    if not runs:
        print(f"bench-history: no BENCH_*.json under {args.root}, nothing to do")
        return 0
    missing = [
        f"{run['bench']}: {key} must be recorded with its gate enforced"
        for run in runs
        for key in REQUIRED_ENFORCED.get(run["bench"], ())
        if key not in speedup_keys(run["results"])
    ]
    if missing:
        for line in missing:
            print(f"bench-history: MISSING {line}")
        return 1
    history = load_history(args.history)
    regressions = find_regressions(runs, history, args.threshold)
    if not args.check_only:
        args.history.parent.mkdir(parents=True, exist_ok=True)
        with args.history.open("a") as handle:
            for run in runs:
                handle.write(json.dumps(run, default=str) + "\n")
        print(
            f"bench-history: appended {len(runs)} runs to {args.history} "
            f"({len(history)} already recorded)"
        )
    for line in regressions:
        print(f"bench-history: REGRESSION {line}")
    if regressions:
        return 1
    gated = sum(len(speedup_keys(run["results"])) for run in runs)
    print(f"bench-history: {gated} speedup figures within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
