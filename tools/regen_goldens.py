#!/usr/bin/env python3
"""Regenerate the figure goldens under tests/studies/goldens/.

Run after an *intentional* model change, review the diff, and commit
the regenerated files together with an EXPERIMENTS.md note explaining
why the paper-vs-computed relationship moved.

Usage:  python tools/regen_goldens.py
"""

from __future__ import annotations

from pathlib import Path

from repro.report.export import figure_to_json
from repro.studies.registry import run_study, study_names

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "studies" / "goldens"


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name in study_names():
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(figure_to_json(run_study(name)))
        print(f"regenerated {path}")
    stale = {p.stem for p in GOLDEN_DIR.glob("*.json")} - set(study_names())
    for name in stale:
        print(f"WARNING: stale golden {name}.json (no matching study)")


if __name__ == "__main__":
    main()
